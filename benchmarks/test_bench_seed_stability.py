"""Seed stability of the headline CASH results.

Reproduction hygiene rather than a paper artefact: the closed-loop
experiments contain measurement noise and (seeded) exploration
randomness, so the headline numbers are only meaningful if they are
stable across seeds.  This bench repeats three representative cells
across seeds and reports mean ± std.
"""

import pytest

from repro.experiments.stats import run_across_seeds

CELLS = (
    ("x264", "cash"),
    ("bzip", "cash"),
    ("hmmer", "cash"),
)
SEEDS = (0, 1, 2)


def regenerate():
    return {
        (app, kind): run_across_seeds(app, kind, seeds=SEEDS, intervals=1000)
        for app, kind in CELLS
    }


@pytest.mark.benchmark(group="stability")
def test_seed_stability(benchmark, announce):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    announce("\n=== Seed stability of CASH (3 seeds, 1000 intervals) ===")
    announce(f"{'cell':<16}{'cost $/hr':>20}{'violations %':>20}")
    for (app, kind), result in results.items():
        announce(
            f"{app + '/' + kind:<16}{str(result.cost):>20}"
            f"{str(result.violation_percent):>20}"
        )

    for result in results.values():
        # Relative cost spread bounded: the learned equilibrium is the
        # same regardless of the noise realization.
        assert result.cost.std / result.cost.mean < 0.25
        # Violations stay rare for every seed, not just on average.
        assert result.violation_percent.max < 8.0
