"""Fig. 9: apache under an oscillating request stream.

Paper claims (Section VI-D2):
* all methods keep the delivered latency close to the target as the
  request rate oscillates;
* race-to-idle is the most expensive — it always reserves the worst
  case, which is only realized briefly;
* CASH is the cheapest adaptive scheme (the paper quotes ~18% cheaper
  than convex optimization; our convex baseline undercuts by violating
  instead, so the comparison we assert is cost-at-met-QoS).
"""

import pytest

from repro.experiments.scenarios import apache_timeseries


def regenerate():
    return apache_timeseries(intervals=448)  # four full oscillations


@pytest.mark.benchmark(group="fig9")
def test_fig9_apache_timeseries(benchmark, announce):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    convex = results["Convex Optimization"]
    race = results["Race to Idle"]
    cash = results["CASH"]

    announce("\n=== Fig. 9: apache under oscillating load ===")
    announce(
        f"{'10Mcyc':>7}{'reqs/s':>8}"
        f"{'convex $/h':>12}{'race $/h':>12}{'cash $/h':>12}{'cash q':>8}"
    )
    for i in range(0, cash.num_intervals, 32):
        announce(
            f"{cash.records[i].start_cycle / 1e7:>7.0f}"
            f"{cash.records[i].request_rate:>8.0f}"
            f"{convex.records[i].cost_rate:>12.4f}"
            f"{race.records[i].cost_rate:>12.4f}"
            f"{cash.records[i].cost_rate:>12.4f}"
            f"{cash.records[i].true_qos:>8.2f}"
        )
    announce(
        f"\nmean cost: convex ${convex.mean_cost_rate:.4f} "
        f"({convex.violation_percent:.0f}% viol), "
        f"race ${race.mean_cost_rate:.4f} "
        f"({race.violation_percent:.0f}% viol), "
        f"cash ${cash.mean_cost_rate:.4f} "
        f"({cash.violation_percent:.0f}% viol)"
    )

    # Race-to-idle is the most expensive and perfectly flat.
    assert race.mean_cost_rate > cash.mean_cost_rate
    assert race.mean_cost_rate > convex.mean_cost_rate
    flat = {round(r.cost_rate, 8) for r in race.records}
    assert len(flat) == 1
    # Race never violates; CASH violates rarely.
    assert race.violation_percent == 0.0
    assert cash.violation_percent < 8.0
    # CASH's allocation tracks the load: its cost at the trough is well
    # below its cost at the peak.
    trough = [
        r.cost_rate for r in cash.records if r.request_rate < 400
    ]
    peak = [
        r.cost_rate for r in cash.records if r.request_rate > 1200
    ]
    assert sum(trough) / len(trough) < 0.7 * (sum(peak) / len(peak))
    # Convex undercuts CASH's cost only by violating wholesale.
    if convex.mean_cost_rate < cash.mean_cost_rate:
        assert convex.violation_percent > 4 * cash.violation_percent
