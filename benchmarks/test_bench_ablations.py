"""Ablations of the CASH runtime's design choices.

Not a paper artefact — this quantifies the design decisions DESIGN.md
§7 calls out, on the x264 workload:

* **full** — the complete runtime;
* **no exploration** — ε-greedy and saturation probing disabled (how
  the system behaves if it only ever exploits its estimates);
* **no phase memory** — every detected phase change starts a fresh
  estimate table (no recall of previously learned phases);
* **correlated learner** — the paper's future-work extension: each
  observation is propagated across the configuration grid through the
  resource-response prior (:mod:`repro.runtime.correlated`).

Two regimes are reported: *cold start* (the first pass over the
application, no warmup) where the correlated learner should shine, and
*steady state* (recorded after a full warmup pass) where phase memory
matters because phases are being revisited.
"""

import pytest

from repro.experiments.harness import CASHAllocator
from repro.experiments.scenarios import make_throughput_simulator
from repro.runtime.correlated import GridSmoothingLearner
from repro.workloads.apps import get_app

VARIANTS = {
    "full": {},
    "no exploration": {"explore": False},
    "no phase memory": {"phase_memory": False},
    "correlated learner": {"learner_factory": GridSmoothingLearner},
}


def run_variants(warmup: int, intervals: int):
    app = get_app("x264")
    results = {}
    for label, kwargs in VARIANTS.items():
        sim = make_throughput_simulator(app)
        allocator = CASHAllocator(
            configs=list(sim.space), qos_goal=sim.qos_goal, **kwargs
        )
        results[label] = sim.run(
            allocator, intervals=intervals, warmup_intervals=warmup
        )
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_cold_start(benchmark, announce):
    results = benchmark.pedantic(
        run_variants, kwargs={"warmup": 0, "intervals": 700},
        rounds=1, iterations=1,
    )
    announce("\n=== Ablation (cold start: first pass, no warmup) ===")
    announce(f"{'variant':<22}{'cost $/hr':>10}{'viol %':>8}")
    for label, run in results.items():
        announce(
            f"{label:<22}{run.cost_dollars:>10.4f}"
            f"{run.violation_percent:>8.1f}"
        )
    # Cold start is noisy; what must hold is that every variant is a
    # *working* runtime (bounded violations) and that the correlated
    # learner is competitive with the independent one — its propagation
    # sketches the surface from few observations, at the price of bias
    # across non-convex knees that direct observation must undo.
    for run in results.values():
        assert run.cost_dollars > 0
        assert run.violation_percent < 15.0
    assert (
        results["correlated learner"].violation_percent
        <= results["full"].violation_percent + 5.0
    )


@pytest.mark.benchmark(group="ablation")
def test_ablation_steady_state(benchmark, announce):
    app = get_app("x264")
    sim = make_throughput_simulator(app)
    warmup = int(app.total_instructions / sim.qos_goal / sim.interval_cycles) + 1

    results = benchmark.pedantic(
        run_variants, kwargs={"warmup": warmup, "intervals": 1000},
        rounds=1, iterations=1,
    )
    announce("\n=== Ablation (steady state: after one full warmup pass) ===")
    announce(f"{'variant':<22}{'cost $/hr':>10}{'viol %':>8}")
    for label, run in results.items():
        announce(
            f"{label:<22}{run.cost_dollars:>10.4f}"
            f"{run.violation_percent:>8.1f}"
        )
    # Every variant must still broadly work (the components are
    # robustness/efficiency features, not correctness requirements).
    for label, run in results.items():
        assert run.violation_percent < 25.0, label
    # The full runtime's violations stay rare in steady state.
    assert results["full"].violation_percent < 5.0
