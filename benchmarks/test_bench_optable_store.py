"""Speed and exactly-once discipline of the tiered operating-point store.

Two acceptance claims are measured and pinned:

* **exactly-once fleet builds** — an 8-job sweep over a fresh shared
  store builds each distinct (phase-key, grid) table exactly once
  across the whole worker pool (fleet ``builds`` equals the number of
  published surfaces), and a shm-warm rerun builds nothing at all;
* **disk-warm startup** — re-warming a large surface grid from a
  populated cache directory is at least 3x faster than the cold
  computation, with bit-identical ``(phase, digest, fingerprint)``
  reports.

Wall-clock numbers land in ``BENCH_PERF.json`` next to the other
engine-speed sections.
"""

import pytest

from repro import cacheconf, perf
from repro.analysis import sanitize
from repro.experiments.stats import (
    CellSpec,
    record_bench_perf,
    run_cells,
    warm_surface_grid,
)
from repro.sim import optstore
from repro.sim.optables import cache_clear

# A large grid (64 x 64 = 4096 configurations per surface) so the warm
# path's savings dominate fixed costs in the disk benchmark.
BIG_SLICES = tuple(range(1, 65))
BIG_L2 = tuple(64 * (i + 1) for i in range(64))
WARM_APPS = ("x264", "apache")


@pytest.fixture(autouse=True)
def pristine_tiers():
    previous = perf.FAST
    previous_sanitize = sanitize.ENABLED
    perf.set_fast_paths(True)
    sanitize.set_enabled(False)
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    yield
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    sanitize.set_enabled(previous_sanitize)
    perf.set_fast_paths(previous)


@pytest.mark.benchmark(group="optable-store")
def test_eight_job_sweep_builds_each_table_exactly_once(benchmark, announce):
    specs = tuple(
        CellSpec(app_name=app, kind="cash", intervals=30, seed=seed)
        for app in ("x264", "apache", "mcf", "hmmer")
        for seed in (0, 1)
    )
    if optstore.ensure() is None:  # pragma: no cover - no shm
        pytest.skip("no shared memory on this platform")
    optstore.reset_counters(fleet=True)

    cold = benchmark.pedantic(
        lambda: run_cells(specs, jobs=8), rounds=1, iterations=1
    )
    fleet = optstore.counters_fleet()
    published = optstore.stats()["shm"]["published"]

    announce("\n=== 8-job sweep over a fresh shared store ===")
    announce(f"cells:               {len(specs)}")
    announce(f"distinct surfaces:   {published}")
    announce(f"fleet builds:        {fleet['builds']}")
    announce(f"fleet L2 hits:       {fleet['l2_hits']}")

    # Exactly once: every build published a new surface — a duplicate
    # build would raise builds above the published-digest count.
    assert fleet["builds"] == published
    assert published > 0

    # A shm-warm rerun attaches to every table and builds nothing.
    optstore.reset_counters(fleet=True)
    warm = run_cells(specs, jobs=8)
    refleet = optstore.counters_fleet()
    announce(f"warm rerun builds:   {refleet['builds']}")
    assert refleet["builds"] == 0
    assert refleet["l2_hits"] >= 1
    for left, right in zip(cold, warm):
        assert left.records == right.records

    record_bench_perf(
        "optable_store_sweep",
        {
            "cells": len(specs),
            "jobs": 8,
            "surfaces": int(published),
            "cold_builds": fleet["builds"],
            "warm_builds": refleet["builds"],
            "warm_l2_hits": refleet["l2_hits"],
        },
    )


@pytest.mark.benchmark(group="optable-store")
def test_disk_warm_restart_at_least_3x_faster(benchmark, announce, tmp_path):
    cacheconf.set_cache_dir(tmp_path)

    cold, cold_timing = warm_surface_grid(
        WARM_APPS, slice_counts=BIG_SLICES, l2_sizes_kb=BIG_L2, jobs=1
    )
    # A fresh "process": no shm store, empty L1 — only the disk is warm.
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    warm, warm_timing = benchmark.pedantic(
        lambda: warm_surface_grid(
            WARM_APPS, slice_counts=BIG_SLICES, l2_sizes_kb=BIG_L2, jobs=1
        ),
        rounds=1,
        iterations=1,
    )
    counts = optstore.counters_local()
    cold_s = float(cold_timing["wall_seconds"])
    warm_s = float(warm_timing["wall_seconds"])
    speedup = cold_s / warm_s if warm_s else float("inf")

    announce("\n=== Disk-warm restart (4096-config surfaces) ===")
    announce(f"surfaces:   {cold_timing['surfaces']}")
    announce(f"cold pass:  {cold_s * 1e3:8.1f} ms")
    announce(f"warm pass:  {warm_s * 1e3:8.1f} ms")
    announce(f"speedup:    {speedup:8.1f}x")

    assert warm == cold  # bit-identical (phase, digest, fingerprint)
    assert counts["l3_hits"] == cold_timing["surfaces"]
    assert counts["builds"] == 0

    record_bench_perf(
        "optable_store",
        {
            "apps": list(WARM_APPS),
            "surfaces": cold_timing["surfaces"],
            "grid_configs": len(BIG_SLICES) * len(BIG_L2),
            "cold_seconds": round(cold_s, 4),
            "disk_warm_seconds": round(warm_s, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert speedup >= 3.0
