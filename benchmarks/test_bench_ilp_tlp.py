"""The ILP-vs-TLP trade-off on a fixed tile budget (Section III-A).

Not a numbered paper artefact, but a direct claim of the architecture
section: grouping Slices "empower[s] users to make decisions about
trading off ILP vs. TLP ... while all utilizing the same resources."
This benchmark sweeps the parallel fraction of a workload on a fixed
24-tile budget and reports the optimal VM shape at each point — the
same silicon reshaped from one wide core into many narrow ones.
"""

import pytest

from repro.arch.vm import best_vm_shape
from repro.workloads.apps import make_x264

PARALLEL_FRACTIONS = (0.0, 0.3, 0.6, 0.9, 0.99)
TILE_BUDGET = 24


def regenerate():
    phase = make_x264().phases[1]  # motion estimation: high ILP
    rows = []
    for fraction in PARALLEL_FRACTIONS:
        point = best_vm_shape(phase, fraction, tile_budget=TILE_BUDGET)
        rows.append((fraction, point))
    return rows


@pytest.mark.benchmark(group="ilp_tlp")
def test_ilp_tlp_tradeoff(benchmark, announce):
    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)

    announce("\n=== ILP vs TLP on a fixed 24-tile budget (x264 p2) ===")
    announce(
        f"{'parallel frac':>14}{'best shape':>16}{'vcores':>8}"
        f"{'throughput':>12}{'$/hr':>8}"
    )
    for fraction, point in rows:
        announce(
            f"{fraction:>14.2f}{str(point.vm):>16}{point.vm.num_vcores:>8}"
            f"{point.throughput:>12.2f}{point.cost_rate:>8.4f}"
        )

    counts = [point.vm.num_vcores for _, point in rows]
    throughputs = [point.throughput for _, point in rows]
    # Serial work wants one wide core; parallel work wants many.
    assert counts[0] == 1
    assert counts[-1] >= 2
    assert counts == sorted(counts)
    # Parallelism never hurts aggregate throughput.
    assert throughputs == sorted(throughputs)
