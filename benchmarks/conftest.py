"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-measured comparison.  Output is printed with ``-s``
semantics forced on so the regenerated rows always reach the console.
"""

import pytest


@pytest.fixture
def announce(capsys):
    """Print through pytest's capture so rows always show up."""

    def _announce(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _announce
