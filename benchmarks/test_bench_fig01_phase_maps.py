"""Fig. 1: x264 per-phase IPC over the 8-Slice x 64KB-8MB grid.

Paper claims (Section II-A):
* 10 distinct phases of computation;
* 6 of 10 phases have local optima distinct from the true optimum;
* no two consecutive phases share the optimal configuration.
"""

import pytest

from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264


def regenerate_fig1():
    app = make_x264()
    rows = []
    for phase in app.phases:
        grid = DEFAULT_PERF_MODEL.ipc_grid(phase, DEFAULT_CONFIG_SPACE)
        best, best_ipc = DEFAULT_PERF_MODEL.best_config(
            phase, DEFAULT_CONFIG_SPACE
        )
        maxima = DEFAULT_PERF_MODEL.local_maxima(phase, DEFAULT_CONFIG_SPACE)
        distinct = [c for c in maxima if c != best]
        rows.append(
            {
                "phase": phase.name,
                "grid": grid,
                "best": best,
                "best_ipc": best_ipc,
                "distinct_local_optima": distinct,
            }
        )
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_phase_maps(benchmark, announce):
    rows = benchmark.pedantic(regenerate_fig1, rounds=3, iterations=1)

    announce("\n=== Fig. 1: x264 phase maps (paper: Fig. 1a-1k) ===")
    previous = None
    with_local = 0
    for index, row in enumerate(rows, start=1):
        marker = " <-- same as previous" if row["best"] == previous else ""
        if row["distinct_local_optima"]:
            with_local += 1
        announce(
            f"phase {index:>2}: optimum {str(row['best']):>9} "
            f"ipc {row['best_ipc']:5.2f}  distinct local optima "
            f"{len(row['distinct_local_optima'])}{marker}"
        )
        previous = row["best"]
    announce(
        f"phases with local optima distinct from global: {with_local}/10 "
        "(paper: 6/10)"
    )

    # The paper's three structural claims must hold.
    assert len(rows) == 10
    assert with_local == 6
    optima = [row["best"] for row in rows]
    assert all(a != b for a, b in zip(optima, optima[1:]))
    # Every phase's surface spans a non-trivial dynamic range.
    for row in rows:
        assert row["grid"].max() / row["grid"].min() > 1.3
