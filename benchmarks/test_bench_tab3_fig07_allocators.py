"""Table III and Fig. 7: cost and QoS violations across 13 applications.

Paper claims (Section VI-C, Table III):
* geometric-mean cost ratios to optimal: Convex 1.23x, Race 1.78x,
  CASH 1.03x;
* CASH delivers the QoS at least 95% of the time (<2% violations on
  average, some apps a little more);
* race-to-idle never violates (with a-priori worst-case knowledge);
* convex optimization has large-scale violations (the paper's omnetpp
  shows ~20% — in our calibration several apps behave that way).
"""

import pytest

from repro.experiments.report import cost_table, per_app_table
from repro.experiments.scenarios import compare_allocators, geometric_mean


def regenerate():
    return compare_allocators(intervals=1000)


@pytest.mark.benchmark(group="tab3_fig7")
def test_table3_and_fig7(benchmark, announce):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    announce("\n=== Table III: cost comparison (geometric means) ===")
    announce(cost_table(results))
    announce("\npaper: Optimal $0.0162 1.00 / Convex $0.0199 1.23 / "
             "Race $0.0289 1.78 / CASH $0.0168 1.03")
    announce("\n=== Fig. 7: per-application cost and QoS violations ===")
    announce(per_app_table(results))

    geo = {
        name: geometric_mean([r.cost_dollars for r in runs.values()])
        for name, runs in results.items()
    }
    ratio = {name: geo[name] / geo["Optimal"] for name in geo}
    violations = {
        name: sum(r.violation_percent for r in runs.values()) / len(runs)
        for name, runs in results.items()
    }

    # --- the paper's orderings ---------------------------------------
    # Race is by far the most expensive systematic strategy.
    assert ratio["Race to Idle"] > 1.5
    # CASH sits between optimal and race: near-optimal cost.
    assert 1.0 <= ratio["CASH"] < ratio["Race to Idle"]
    # CASH has rare violations; the paper quotes <2%, we accept <5%.
    assert violations["CASH"] < 5.0
    # Race (with worst-case knowledge) and the oracle never violate.
    assert violations["Race to Idle"] == 0.0
    assert violations["Optimal"] == 0.0
    # Convex optimization has large-scale violations.
    assert violations["Convex Optimization"] > 10.0

    # --- the omnetpp anomaly (Section VI-C) --------------------------
    # Convex sometimes undercuts CASH's cost, but only by violating
    # QoS wholesale.
    convex_cheaper = [
        app
        for app in results["Optimal"]
        if results["Convex Optimization"][app].cost_dollars
        < results["CASH"][app].cost_dollars
    ]
    for app in convex_cheaper:
        assert (
            results["Convex Optimization"][app].violation_percent
            > results["CASH"][app].violation_percent
        )
