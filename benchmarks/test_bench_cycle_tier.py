"""Speed of the event-driven cycle tier (not a paper artefact).

Three layers are measured and pinned:

* the event-driven pipeline — wakeup scoreboard, cycle skipping, and
  the load-release heap must beat the seed's per-cycle scalar scan by
  a wide margin on a large multi-Slice trace, with bit-identical
  results (the :class:`PipelineResult`, every per-Slice counter, and
  the memory-hierarchy statistics);
* the vectorized trace generator — same micro-op sequence, same RNG
  state afterwards, faster;
* the sharded tier-agreement sweep — job count must never change
  results, and on multi-core boxes more jobs must not be slower.

Wall-clock numbers are persisted to ``BENCH_CYCLE.json`` so runs can
be compared across commits.
"""

import os
import time

import pytest

from repro import native, perf
from repro.arch.counters import CounterKind
from repro.arch.vcore import VCoreConfig
from repro.experiments.scenarios import tier_agreement_grid
from repro.experiments.stats import record_bench_cycle
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase

PHASE = Phase(
    name="bench.cycle",
    instructions_m=10,
    ilp=3.5,
    mem_refs_per_inst=0.3,
    l1_miss_rate=0.15,
    working_set=((256, 0.6), (2048, 0.9)),
    branch_fraction=0.15,
    mispredict_rate=0.05,
)

TRACE_OPS = 60_000
CONFIG = VCoreConfig(slices=8, l2_kb=512)


def _snapshot(pipeline, result):
    counters = [
        {kind.value: c.value(kind) for kind in CounterKind}
        for c in pipeline.counters
    ]
    return result, counters, pipeline.memory.stats()


@pytest.mark.benchmark(group="cycle")
def test_event_driven_pipeline_speedup(benchmark, announce):
    """Event-driven run >= 3x faster than the scalar scan, bit-identical."""
    trace = TraceGenerator(PHASE, seed=0).generate(TRACE_OPS)

    with perf.fast_paths(False):
        pipeline = MultiSlicePipeline(CONFIG)
        start = time.perf_counter()
        result = pipeline.run(trace)
        reference_s = time.perf_counter() - start
        reference = _snapshot(pipeline, result)

    def fast_run():
        pipeline = MultiSlicePipeline(CONFIG)
        start = time.perf_counter()
        result = pipeline.run(trace)
        return time.perf_counter() - start, _snapshot(pipeline, result)

    with perf.fast_paths(True):
        fast_run()  # warm caches outside the timed region
        fast_s, fast = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    speedup = reference_s / fast_s

    announce(f"\n=== Cycle tier: {TRACE_OPS} ops on {CONFIG} ===")
    announce(f"scalar scan:   {reference_s:6.3f} s")
    announce(f"event-driven:  {fast_s:6.3f} s")
    announce(f"speedup:       {speedup:6.1f}x")

    record_bench_cycle(
        "pipeline",
        {
            "trace_ops": TRACE_OPS,
            "config": str(CONFIG),
            "reference_seconds": round(reference_s, 4),
            "fast_seconds": round(fast_s, 4),
            "speedup": round(speedup, 1),
        },
    )
    assert fast == reference
    # Conservative floor; typically ~12x on this trace.
    assert speedup >= 3.0


@pytest.mark.benchmark(group="cycle")
def test_trace_generator_speedup(benchmark, announce):
    """Vectorized generation: same ops, same RNG state, faster."""

    def generate():
        generator = TraceGenerator(PHASE, seed=0)
        start = time.perf_counter()
        ops = generator.generate(TRACE_OPS)
        return time.perf_counter() - start, ops, generator.rng.getstate()

    with perf.fast_paths(False):
        reference_s, reference_ops, reference_state = generate()
    with perf.fast_paths(True):
        generate()  # warm numpy dispatch outside the timed region
        fast_s, fast_ops, fast_state = benchmark.pedantic(
            generate, rounds=1, iterations=1
        )
    speedup = reference_s / fast_s

    announce(f"\n=== Trace generator: {TRACE_OPS} ops ===")
    announce(f"scalar loop:  {reference_s * 1e3:8.1f} ms")
    announce(f"vectorized:   {fast_s * 1e3:8.1f} ms")
    announce(f"speedup:      {speedup:8.2f}x")

    record_bench_cycle(
        "trace_generator",
        {
            "trace_ops": TRACE_OPS,
            "reference_seconds": round(reference_s, 4),
            "fast_seconds": round(fast_s, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert fast_ops == reference_ops
    assert fast_state == reference_state
    # The win here is modest (construction + boxing); the floor only
    # guards against the vectorized path regressing below the scalar.
    assert speedup >= 0.75


@pytest.mark.benchmark(group="cycle")
def test_batch_tier_throughput(benchmark, announce):
    """Struct-of-arrays batch tier >= 8x the per-cell dispatch path.

    Full tier-agreement grid, jobs=1 on both sides so the comparison
    is pure engine speed: batched lockstep stepping through the
    compiled kernel versus one object-pipeline run per cell.  Results
    must be bit-identical; the ``cells_per_second`` series lands in
    ``BENCH_CYCLE.json``.
    """
    if native.batch_core() is None:
        pytest.skip(f"native batch core unavailable: {native.batch_core_error()}")

    per_cell, per_cell_timing = tier_agreement_grid(jobs=1, batch=False)

    tier_agreement_grid(jobs=1, batch=True)  # warm outside the timed region
    batched, batched_timing = benchmark.pedantic(
        lambda: tier_agreement_grid(jobs=1, batch=True),
        rounds=1,
        iterations=1,
    )
    speedup = (
        batched_timing["cells_per_second"]
        / per_cell_timing["cells_per_second"]
    )

    announce(f"\n=== Batch tier ({batched_timing['cells']} cells) ===")
    announce(f"per-cell:  {per_cell_timing['cells_per_second']:8.1f} cells/s")
    announce(f"batched:   {batched_timing['cells_per_second']:8.1f} cells/s")
    announce(f"speedup:   {speedup:8.1f}x")

    record_bench_cycle(
        "batch_tier",
        {
            "cells_per_second": {
                "per_cell": per_cell_timing["cells_per_second"],
                "batched": batched_timing["cells_per_second"],
            },
            "per_cell": per_cell_timing,
            "batched": batched_timing,
            "speedup": round(speedup, 1),
        },
    )
    assert batched == per_cell
    # Typically ~9.5x on one core; the floor is the PR's acceptance bar.
    assert speedup >= 8.0


@pytest.mark.benchmark(group="cycle")
def test_tier_sweep_sharding(benchmark, announce):
    """Job count is invisible in the results, visible in the clock."""
    apps = ("apache", "mcf")

    serial, serial_timing = tier_agreement_grid(
        app_names=apps, instructions=6000, jobs=1
    )
    jobs = max(2, min(4, os.cpu_count() or 1))
    parallel, parallel_timing = benchmark.pedantic(
        lambda: tier_agreement_grid(app_names=apps, instructions=6000, jobs=jobs),
        rounds=1,
        iterations=1,
    )

    announce(f"\n=== Tier-agreement sweep ({serial_timing['cells']} cells) ===")
    announce(f"serial (jobs=1):   {serial_timing['wall_seconds']:6.3f} s")
    announce(f"parallel (jobs={jobs}): {parallel_timing['wall_seconds']:6.3f} s")

    record_bench_cycle(
        "tier_sweep",
        {
            "serial": serial_timing,
            "parallel": parallel_timing,
        },
    )
    assert list(serial) == list(parallel)
    assert serial == parallel
    if (os.cpu_count() or 1) >= 2:
        # With real cores available the pool must pay for itself; the
        # generous factor absorbs process start-up on small grids.
        assert parallel_timing["wall_seconds"] < serial_timing["wall_seconds"] * 1.2
