"""Section VI-A: reconfiguration and runtime overheads.

Paper claims:
* Slice expansion ~= a pipeline flush, approximately 15 cycles;
* Slice contraction takes at most 64 cycles more than expansion;
* an L2 bank flush is BankSize/NetworkWidth cycles worst case (the
  paper quotes 8000 for 64 KB over 64 bits; binary-exact is 8192);
* one runtime iteration costs ~2000 / 1100 / 977 cycles on 1 / 2 / 3
  Slices, independent of the application.
"""

import pytest

from repro.arch.reconfig import DEFAULT_RECONFIG_COSTS
from repro.arch.registers import DistributedRegisterFile
from repro.arch.vcore import VCoreConfig
from repro.sim.ssim import SSim

PAPER_RUNTIME_CYCLES = {1: 2000, 2: 1100, 3: 977}


@pytest.mark.benchmark(group="sec6a")
def test_architectural_overheads(benchmark, announce):
    costs = DEFAULT_RECONFIG_COSTS

    def measure():
        return {
            "slice_expand": costs.slice_expand_cycles(),
            "slice_shrink_worst": costs.slice_shrink_cycles(),
            "l2_flush_worst": costs.l2_bank_flush_cycles(),
        }

    measured = benchmark.pedantic(measure, rounds=5, iterations=1)

    announce("\n=== Sec. VI-A: architectural reconfiguration overheads ===")
    announce(f"{'mechanism':<28}{'measured':>10}{'paper':>10}")
    announce(f"{'Slice expansion':<28}{measured['slice_expand']:>10}{'~15':>10}")
    announce(
        f"{'Slice contraction (worst)':<28}"
        f"{measured['slice_shrink_worst']:>10}{'<= 15+64':>10}"
    )
    announce(
        f"{'L2 bank flush (worst)':<28}"
        f"{measured['l2_flush_worst']:>10}{'8000*':>10}"
    )
    announce("(* the paper rounds 64KB/8B; binary-exact is 8192)")

    assert measured["slice_expand"] == 15
    assert measured["slice_shrink_worst"] <= 15 + 64
    assert measured["l2_flush_worst"] == 8192


@pytest.mark.benchmark(group="sec6a")
def test_register_flush_bounded_by_global_registers(benchmark, announce):
    def measure():
        # 64 live architectural registers (e.g. Alpha's 32 int + 32 fp)
        # spread across 8 Slices, shrunk to one.
        registers = DistributedRegisterFile(slice_ids=range(8))
        for gr in range(64):
            registers.write(gr % 8, gr, gr)
        record = registers.shrink([0])
        return record

    record = benchmark.pedantic(measure, rounds=5, iterations=1)
    announce(
        f"\nregister flush on 8->1 shrink: {record.messages} messages "
        "(bound: 128 global logical registers)"
    )
    assert record.messages <= 128
    assert record.spills == 0


@pytest.mark.benchmark(group="sec6a")
def test_runtime_iteration_cycles(benchmark, announce):
    ssim = SSim()

    def measure():
        return {
            slices: ssim.runtime_iteration_cycles(slices=slices)
            for slices in (1, 2, 3)
        }

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    announce("\n=== Sec. VI-A: runtime overhead (cycles per iteration) ===")
    announce(f"{'slices':>7}{'measured':>10}{'paper':>8}")
    for slices, cycles in measured.items():
        announce(
            f"{slices:>7}{cycles:>10.0f}{PAPER_RUNTIME_CYCLES[slices]:>8}"
        )

    # Shape: decreasing with Slices, same order of magnitude as paper.
    assert measured[1] > measured[2] > measured[3]
    for slices, cycles in measured.items():
        paper = PAPER_RUNTIME_CYCLES[slices]
        assert 0.5 * paper <= cycles <= 1.6 * paper
