"""The process-global table cache under thread contention.

The cache publishes immutable sealed tables under ``_CACHE_LOCK``;
these tests hammer ``operating_point_table`` from many threads —
concurrently with ``cache_clear`` resets — and assert the two
invariants the lock discipline promises:

* **no half-published table**: every table any thread observes is
  fully constructed (correct length, sealed, consistent ``max_qos``,
  IPC map matching its points, envelope identical to a scratch
  computation);
* **consistent counters**: once quiescent, every recorded lookup is
  either a hit or a miss (``hits + misses == calls``), and per-phase
  hit/miss arithmetic survives interleaved resets.
"""

import threading

import pytest

from repro import perf
from repro.arch.vcore import ConfigurationSpace
from repro.runtime.optimizer import compute_envelope
from repro.sim.optables import cache_clear, cache_info, operating_point_table
from repro.workloads.apps import make_apache, make_x264

SPACE = ConfigurationSpace(slice_counts=(1, 2, 4), l2_sizes_kb=(64, 256))


@pytest.fixture(autouse=True)
def fast_and_clean():
    previous = perf.FAST
    perf.set_fast_paths(True)
    cache_clear()
    yield
    cache_clear()
    perf.set_fast_paths(previous)


def table_invariants(table, phase):
    """Everything a fully-published table must satisfy."""
    assert len(table) == len(list(SPACE))
    assert table.sealed
    assert not table.speedup_array.flags.writeable
    assert table.max_qos == max(p.speedup for p in table.points)
    for point in table.points:
        assert table.get_ipc(point.config) == point.speedup
    hull, best_at = table.envelope()
    fresh_hull, _ = compute_envelope(list(table.points))
    assert list(hull) == fresh_hull
    assert best_at[hull[0]] is not None


class TestContention:
    def test_concurrent_gets_observe_only_whole_tables(self):
        phases = [app.phases[0] for app in (make_x264(), make_apache())]
        phases += [make_x264().phases[1]]
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait()
                for round_number in range(40):
                    phase = phases[(seed + round_number) % len(phases)]
                    table = operating_point_table(phase, space=SPACE)
                    table_invariants(table, phase)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        info = cache_info()
        calls = 8 * 40
        assert info["hits"] + info["misses"] == calls
        assert info["misses"] >= len(phases)
        assert info["size"] == len(phases)

    def test_gets_racing_resets_stay_consistent(self):
        phases = [app.phases[0] for app in (make_x264(), make_apache())]
        errors = []
        stop = threading.Event()
        barrier = threading.Barrier(9)

        def getter(seed):
            try:
                barrier.wait()
                for round_number in range(60):
                    phase = phases[(seed + round_number) % len(phases)]
                    table = operating_point_table(phase, space=SPACE)
                    table_invariants(table, phase)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def resetter():
            try:
                barrier.wait()
                while not stop.is_set():
                    cache_clear()
                    info = cache_info()
                    # Counters reset atomically with the table drop: a
                    # torn reset would leave hits/misses from different
                    # epochs with size from a third.
                    assert info["hits"] >= 0 and info["misses"] >= 0
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=getter, args=(seed,)) for seed in range(8)
        ]
        threads.append(threading.Thread(target=resetter))
        for thread in threads:
            thread.start()
        for thread in threads[:-1]:
            thread.join()
        stop.set()
        threads[-1].join()
        assert errors == []

        # Quiescent epoch: with no further resets, counter arithmetic
        # must hold exactly again.
        cache_clear()
        calls = 25
        for index in range(calls):
            operating_point_table(phases[index % len(phases)], space=SPACE)
        info = cache_info()
        assert info["hits"] + info["misses"] == calls
        assert info["misses"] == len(phases)
        assert info["hits"] == calls - len(phases)
        assert info["size"] == len(phases)

    def test_single_phase_hammer_yields_one_miss(self):
        phase = make_x264().phases[0]
        barrier = threading.Barrier(8)
        observed = []

        def worker():
            barrier.wait()
            tables = {
                id(operating_point_table(phase, space=SPACE))
                for _ in range(50)
            }
            observed.append(tables)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        info = cache_info()
        assert info["hits"] + info["misses"] == 8 * 50
        # Several threads may race the first build (the build happens
        # outside the lock), but the cache converges on one table and
        # every post-publication get hits it.
        assert 1 <= info["misses"] <= 8
        assert info["size"] == 1
        final = operating_point_table(phase, space=SPACE)
        for tables in observed:
            assert id(final) in tables or len(tables) <= info["misses"]