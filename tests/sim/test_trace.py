"""Synthetic trace generation."""

import pytest

from repro.sim.isa import MicroOp, OpKind
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.3,
        l1_miss_rate=0.1,
        working_set=((256, 0.6), (2048, 0.9)),
        branch_fraction=0.15,
        mispredict_rate=0.05,
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestMicroOpValidation:
    def test_load_needs_address_and_dest(self):
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.LOAD, dest=1)
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.LOAD, address=64)

    def test_store_needs_address(self):
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.STORE)

    def test_only_branches_mispredict(self):
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.ALU, dest=1, mispredicted=True)

    def test_negative_registers_rejected(self):
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.ALU, sources=(-1,), dest=1)
        with pytest.raises(ValueError):
            MicroOp(op_id=0, kind=OpKind.ALU, dest=-2)

    def test_helper_properties(self):
        load = MicroOp(op_id=0, kind=OpKind.LOAD, dest=1, address=64)
        assert load.is_memory and not load.uses_alu
        branch = MicroOp(op_id=1, kind=OpKind.BRANCH)
        assert branch.uses_alu and not branch.is_memory


class TestGeneration:
    def test_generates_requested_count(self):
        ops = TraceGenerator(make_phase()).generate(500)
        assert len(ops) == 500
        assert [op.op_id for op in ops] == list(range(500))

    def test_deterministic_by_seed(self):
        a = TraceGenerator(make_phase(), seed=3).generate(200)
        b = TraceGenerator(make_phase(), seed=3).generate(200)
        assert a == b

    def test_different_seeds_differ(self):
        a = TraceGenerator(make_phase(), seed=1).generate(200)
        b = TraceGenerator(make_phase(), seed=2).generate(200)
        assert a != b

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            TraceGenerator(make_phase()).generate(0)

    def test_rejects_too_few_registers(self):
        with pytest.raises(ValueError):
            TraceGenerator(make_phase(), num_registers=4)

    def test_memory_mix_matches_phase(self):
        phase = make_phase(mem_refs_per_inst=0.4)
        ops = TraceGenerator(phase, seed=0).generate(5000)
        stats = TraceGenerator.stats(ops)
        assert stats.memory_fraction == pytest.approx(0.4, abs=0.05)

    def test_branch_mix_matches_phase(self):
        phase = make_phase(branch_fraction=0.2)
        ops = TraceGenerator(phase, seed=0).generate(5000)
        stats = TraceGenerator.stats(ops)
        assert stats.branches / len(ops) == pytest.approx(0.2, abs=0.04)

    def test_mispredict_rate_matches_phase(self):
        phase = make_phase(branch_fraction=0.3, mispredict_rate=0.1)
        ops = TraceGenerator(phase, seed=0).generate(10_000)
        stats = TraceGenerator.stats(ops)
        assert stats.mispredicts / max(stats.branches, 1) == pytest.approx(
            0.1, abs=0.04
        )

    def test_pure_compute_phase_has_no_memory_ops(self):
        phase = make_phase(mem_refs_per_inst=0.0, working_set=())
        ops = TraceGenerator(phase, seed=0).generate(1000)
        assert TraceGenerator.stats(ops).memory_fraction == 0.0

    def test_addresses_are_block_aligned(self):
        ops = TraceGenerator(make_phase(), seed=0).generate(2000)
        for op in ops:
            if op.is_memory:
                assert op.address % 64 == 0

    def test_addresses_show_temporal_locality(self):
        """Most accesses re-touch recent blocks (the L1 hit share)."""
        phase = make_phase(l1_miss_rate=0.1)
        ops = TraceGenerator(phase, seed=0).generate(10_000)
        addresses = [op.address for op in ops if op.is_memory]
        unique = len(set(addresses))
        # With 90% re-use, unique blocks are a small share of accesses.
        assert unique < 0.3 * len(addresses)

    def test_working_set_bounds_cold_addresses(self):
        phase = make_phase(working_set=((128, 0.9),), l1_miss_rate=1.0)
        generator = TraceGenerator(phase, seed=0)
        ops = generator.generate(5000)
        in_region = [
            op.address
            for op in ops
            if op.is_memory and op.address < (1 << 30)
        ]
        assert in_region and max(in_region) < 128 * 1024


class TestGenerateArrays:
    """The SoA generation path is a twin of ``generate``, not a fork."""

    def test_matches_object_generation(self):
        phase = make_phase()
        arrays = TraceGenerator(phase, seed=5).generate_arrays(1200)
        ops = TraceGenerator(phase, seed=5).generate(1200)
        assert arrays.to_ops() == ops

    def test_scalar_twin_matches(self):
        from repro import perf

        phase = make_phase(branch_fraction=0.25, l1_miss_rate=0.3)
        with perf.fast_paths(True):
            fast = TraceGenerator(phase, seed=2).generate_arrays(800)
        with perf.fast_paths(False):
            reference = TraceGenerator(phase, seed=2).generate_arrays(800)
        perf.set_fast_paths(True)
        assert fast.to_ops() == reference.to_ops()

    def test_rng_state_continues_identically(self):
        """Consecutive chunks must splice: array generation leaves the
        generator in exactly the state object generation would."""
        phase = make_phase()
        via_arrays = TraceGenerator(phase, seed=9)
        via_objects = TraceGenerator(phase, seed=9)
        first = via_arrays.generate_arrays(400)
        assert first.to_ops() == via_objects.generate(400)
        # The follow-on chunk draws from the continued stream on both
        # sides, so any state divergence shows up immediately.
        second = via_arrays.generate_arrays(400)
        assert second.to_ops() == via_objects.generate(400)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            TraceGenerator(make_phase()).generate_arrays(0)
