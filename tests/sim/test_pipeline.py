"""The cycle-level multi-Slice pipeline."""

import pytest

from repro.arch.counters import CounterKind
from repro.arch.vcore import VCoreConfig
from repro.sim.isa import MicroOp, OpKind
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.25,
        l1_miss_rate=0.05,
        working_set=((256, 0.9),),
        branch_fraction=0.1,
        mispredict_rate=0.02,
    )
    defaults.update(overrides)
    return Phase(**defaults)


def alu_chain(count, dependent=True):
    """A chain of ALU ops; fully serial when dependent."""
    ops = []
    for i in range(count):
        sources = (0,) if (i == 0 or not dependent) else (1,)
        ops.append(MicroOp(op_id=i, kind=OpKind.ALU, sources=sources, dest=1))
    return ops


class TestBasicExecution:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            MultiSlicePipeline(VCoreConfig(1, 64)).run([])

    def test_all_instructions_commit(self):
        trace = TraceGenerator(make_phase(), seed=0).generate(500)
        result = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace)
        assert result.instructions == 500
        assert result.cycles > 0

    def test_serial_chain_is_one_per_cycle_at_best(self):
        result = MultiSlicePipeline(VCoreConfig(1, 64)).run(alu_chain(200))
        assert result.ipc <= 1.0 + 1e-9

    def test_independent_ops_beat_serial_chain(self):
        serial = MultiSlicePipeline(VCoreConfig(1, 64)).run(alu_chain(200))
        parallel = MultiSlicePipeline(VCoreConfig(4, 64)).run(
            alu_chain(200, dependent=False)
        )
        assert parallel.ipc > serial.ipc

    def test_deterministic(self):
        trace = TraceGenerator(make_phase(), seed=1).generate(400)
        a = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace)
        b = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace)
        assert a.cycles == b.cycles

    def test_single_alu_bounds_alu_throughput(self):
        """One ALU per Slice: independent ALU ops still cap at ~1 IPC
        per Slice."""
        result = MultiSlicePipeline(VCoreConfig(1, 64)).run(
            alu_chain(300, dependent=False)
        )
        assert result.ipc <= 1.0 + 1e-9


class TestScaling:
    def test_more_slices_help_parallel_work(self):
        phase = make_phase(ilp=6.0, mem_refs_per_inst=0.1, l1_miss_rate=0.02)
        trace = TraceGenerator(phase, seed=0).generate(2000)
        ipc1 = MultiSlicePipeline(VCoreConfig(1, 64)).run(trace).ipc
        ipc4 = MultiSlicePipeline(VCoreConfig(4, 64)).run(trace).ipc
        assert ipc4 > 1.5 * ipc1

    def test_bigger_cache_helps_memory_work(self):
        # A 128 KB looping working set: a 64 KB L2 thrashes, a 256 KB
        # L2 holds it.  The trace must be long enough to re-touch the
        # footprint (cold first touches miss in any cache).
        phase = make_phase(
            mem_refs_per_inst=0.4,
            l1_miss_rate=0.6,
            working_set=((128, 0.95),),
        )
        trace = TraceGenerator(phase, seed=0).generate(12_000)
        small = MultiSlicePipeline(VCoreConfig(2, 64)).run(trace).ipc
        large = MultiSlicePipeline(VCoreConfig(2, 256)).run(trace).ipc
        assert large > small


class TestMemoryBehaviour:
    def test_l2_misses_counted(self):
        phase = make_phase(
            mem_refs_per_inst=0.5,
            l1_miss_rate=0.9,
            working_set=((64, 0.05),),  # streaming: nearly all misses
        )
        trace = TraceGenerator(phase, seed=0).generate(1000)
        result = MultiSlicePipeline(VCoreConfig(1, 64)).run(trace)
        assert result.l2_misses > 100

    def test_fitting_working_set_hits_in_l2(self):
        # A 64 KB working set re-touched many times: once warm, the
        # 256 KB L2 serves the L1 misses.
        phase = make_phase(
            mem_refs_per_inst=0.5, l1_miss_rate=0.8, working_set=((64, 0.98),)
        )
        trace = TraceGenerator(phase, seed=0).generate(12_000)
        result = MultiSlicePipeline(VCoreConfig(1, 256)).run(trace)
        assert result.l2_hits > result.l2_misses

    def test_counters_populated(self):
        trace = TraceGenerator(make_phase(), seed=0).generate(600)
        pipeline = MultiSlicePipeline(VCoreConfig(2, 128))
        pipeline.run(trace)
        committed = sum(
            c.value(CounterKind.INSTRUCTIONS_COMMITTED)
            for c in pipeline.counters
        )
        assert committed == 600
        assert all(
            c.value(CounterKind.CYCLES) > 0 for c in pipeline.counters
        )


class TestBranches:
    def test_mispredicts_slow_execution(self):
        clean = make_phase(branch_fraction=0.2, mispredict_rate=0.0)
        dirty = make_phase(branch_fraction=0.2, mispredict_rate=0.2)
        trace_clean = TraceGenerator(clean, seed=0).generate(1500)
        trace_dirty = TraceGenerator(dirty, seed=0).generate(1500)
        ipc_clean = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace_clean).ipc
        ipc_dirty = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace_dirty).ipc
        assert ipc_dirty < ipc_clean

    def test_mispredicts_counted(self):
        phase = make_phase(branch_fraction=0.3, mispredict_rate=0.3)
        trace = TraceGenerator(phase, seed=0).generate(1000)
        result = MultiSlicePipeline(VCoreConfig(1, 64)).run(trace)
        expected = sum(op.mispredicted for op in trace)
        assert result.mispredicts == expected


class TestDrain:
    def test_drain_matches_pipeline_flush_scale(self):
        """A pipeline flush is ~15 cycles (Section VI-A)."""
        trace = TraceGenerator(make_phase(), seed=0).generate(300)
        pipeline = MultiSlicePipeline(VCoreConfig(1, 64))
        assert pipeline.drain_cycles(trace) == 15
