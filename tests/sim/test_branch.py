"""Dynamic branch prediction (Fig. 4's Br_pred & BTB)."""

import random

import pytest

from repro.arch.vcore import VCoreConfig
from repro.sim.branch import (
    BimodalPredictor,
    BranchTargetBuffer,
    FrontEndPredictor,
)
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


class TestBimodal:
    def test_learns_a_biased_branch(self):
        predictor = BimodalPredictor()
        for _ in range(50):
            predictor.update(0x1000, True)
        assert predictor.predict(0x1000) is True
        # Only the cold-start transient could have missed.
        assert predictor.mispredictions <= 2

    def test_learns_not_taken_too(self):
        predictor = BimodalPredictor()
        for _ in range(50):
            predictor.update(0x2000, False)
        assert predictor.predict(0x2000) is False

    def test_hysteresis_tolerates_single_flip(self):
        """2-bit counters: one anomalous outcome doesn't flip a strongly
        trained prediction."""
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x40, True)
        predictor.update(0x40, False)  # single not-taken
        assert predictor.predict(0x40) is True

    def test_random_branch_stays_hard(self):
        predictor = BimodalPredictor()
        rng = random.Random(0)
        for _ in range(2000):
            predictor.update(0x80, rng.random() < 0.5)
        assert predictor.mispredict_rate > 0.35

    def test_distinct_addresses_use_distinct_counters(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(0x40, True)
            predictor.update(0x80, False)
        assert predictor.predict(0x40) is True
        assert predictor.predict(0x80) is False

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=1000)


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        assert btb.lookup(0x40) is None
        btb.install(0x40, 0x4000)
        assert btb.lookup(0x40) == 0x4000

    def test_conflicting_entries_evict(self):
        btb = BranchTargetBuffer(entries=4)
        btb.install(0x40, 1)
        conflicting = 0x40 + 4 * 64  # same index, different tag
        btb.install(conflicting, 2)
        assert btb.lookup(0x40) is None

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=3)


class TestFrontEnd:
    def test_stable_taken_branch_trains_clean(self):
        front = FrontEndPredictor()
        redirects = [front.resolve(0x40, True, 0x4000) for _ in range(30)]
        assert sum(redirects[5:]) == 0

    def test_not_taken_branch_ignores_btb(self):
        front = FrontEndPredictor()
        for _ in range(10):
            front.resolve(0x40, False, 0)
        assert front.btb.lookups == 0

    def test_changing_target_redirects(self):
        front = FrontEndPredictor()
        for _ in range(10):
            front.resolve(0x40, True, 0x4000)
        assert front.resolve(0x40, True, 0x8000) is True  # new target


class TestPipelineIntegration:
    def _phase(self, mispredict_rate):
        return Phase(
            name="b",
            instructions_m=1,
            ilp=3.0,
            mem_refs_per_inst=0.2,
            l1_miss_rate=0.05,
            working_set=((128, 0.9),),
            branch_fraction=0.2,
            mispredict_rate=mispredict_rate,
        )

    def test_emergent_rate_tracks_phase_specification(self):
        phase = self._phase(0.06)
        trace = TraceGenerator(phase, seed=0).generate(8000)
        pipeline = MultiSlicePipeline(
            VCoreConfig(2, 128), dynamic_branches=True
        )
        pipeline.run(trace)
        emergent = pipeline.front_end.direction.mispredict_rate
        assert emergent == pytest.approx(0.06, abs=0.03)

    def test_well_predicted_phase_runs_faster(self):
        easy = self._phase(0.01)
        hard = self._phase(0.25)
        easy_trace = TraceGenerator(easy, seed=0).generate(5000)
        hard_trace = TraceGenerator(hard, seed=0).generate(5000)
        config = VCoreConfig(2, 128)
        easy_ipc = MultiSlicePipeline(config, dynamic_branches=True).run(
            easy_trace
        ).ipc
        hard_ipc = MultiSlicePipeline(config, dynamic_branches=True).run(
            hard_trace
        ).ipc
        assert easy_ipc > hard_ipc

    def test_default_mode_uses_scripted_mispredicts(self):
        phase = self._phase(0.1)
        trace = TraceGenerator(phase, seed=0).generate(2000)
        pipeline = MultiSlicePipeline(VCoreConfig(1, 64))
        result = pipeline.run(trace)
        assert pipeline.front_end is None
        assert result.mispredicts == sum(op.mispredicted for op in trace)
