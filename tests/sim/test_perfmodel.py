"""The fast analytic performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.sim.perfmodel import DEFAULT_PERF_MODEL, PerformanceModel, slice_extent
from repro.workloads.phase import Phase

CONFIGS = st.builds(
    VCoreConfig,
    slices=st.integers(1, 8),
    l2_kb=st.sampled_from([64 * 2 ** i for i in range(8)]),
)


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.3,
        l1_miss_rate=0.1,
        working_set=((256, 0.6), (2048, 0.9)),
        mlp=2.0,
        comm_penalty=0.05,
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestSliceExtent:
    def test_single_slice_has_no_extent(self):
        assert slice_extent(1) == 0.0

    def test_grows_with_slices(self):
        extents = [slice_extent(n) for n in range(1, 9)]
        assert extents == sorted(extents)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            slice_extent(0)


class TestPeakIpc:
    def test_bounded_by_ilp(self):
        phase = make_phase(ilp=2.5, comm_penalty=0.0)
        for n in range(1, 9):
            assert DEFAULT_PERF_MODEL.peak_ipc(phase, n) <= 2.5

    def test_saturating_in_slices(self):
        phase = make_phase(ilp=4.0, comm_penalty=0.0)
        gains = [
            DEFAULT_PERF_MODEL.peak_ipc(phase, n + 1)
            - DEFAULT_PERF_MODEL.peak_ipc(phase, n)
            for n in range(1, 8)
        ]
        assert all(g >= -1e-12 for g in gains)
        assert gains == sorted(gains, reverse=True)

    def test_strong_comm_penalty_creates_slice_optimum(self):
        """Low-ILP, high-communication phases peak at few Slices —
        one source of the non-convexity in Fig. 1."""
        phase = make_phase(ilp=1.4, comm_penalty=0.35)
        peaks = [DEFAULT_PERF_MODEL.peak_ipc(phase, n) for n in range(1, 9)]
        best = peaks.index(max(peaks)) + 1
        assert best < 8


class TestMemoryCpi:
    def test_zero_for_pure_compute(self):
        phase = make_phase(mem_refs_per_inst=0.0)
        assert DEFAULT_PERF_MODEL.memory_cpi(phase, VCoreConfig(1, 64)) == 0.0

    def test_decreases_when_working_set_fits(self):
        phase = make_phase(working_set=((256, 0.9),))
        small = DEFAULT_PERF_MODEL.memory_cpi(phase, VCoreConfig(1, 64))
        fits = DEFAULT_PERF_MODEL.memory_cpi(phase, VCoreConfig(1, 256))
        assert fits < small

    def test_increases_on_plateau(self):
        """More banks without more capture = pure latency overhead."""
        phase = make_phase(working_set=((64, 0.5),))
        small = DEFAULT_PERF_MODEL.memory_cpi(phase, VCoreConfig(1, 64))
        bigger = DEFAULT_PERF_MODEL.memory_cpi(phase, VCoreConfig(1, 2048))
        assert bigger > small

    def test_effective_mlp_capped_by_inflight_loads(self):
        phase = make_phase(mlp=100.0)
        assert DEFAULT_PERF_MODEL.effective_mlp(phase, 1) == 8.0
        assert DEFAULT_PERF_MODEL.effective_mlp(phase, 2) == 16.0


class TestIpc:
    @given(config=CONFIGS)
    def test_always_positive_and_bounded(self, config):
        phase = make_phase()
        ipc = DEFAULT_PERF_MODEL.ipc(phase, config)
        assert 0.0 < ipc <= config.slices * 2

    def test_cycles_for(self):
        phase = make_phase()
        config = VCoreConfig(2, 256)
        ipc = DEFAULT_PERF_MODEL.ipc(phase, config)
        assert DEFAULT_PERF_MODEL.cycles_for(phase, config, 1e6) == pytest.approx(
            1e6 / ipc
        )

    def test_cycles_for_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_PERF_MODEL.cycles_for(make_phase(), VCoreConfig(1, 64), -1)

    def test_compute_phase_scales_with_slices(self):
        phase = make_phase(
            ilp=6.0, mem_refs_per_inst=0.1, l1_miss_rate=0.02,
            comm_penalty=0.01, working_set=((64, 0.95),),
        )
        ipc1 = DEFAULT_PERF_MODEL.ipc(phase, VCoreConfig(1, 64))
        ipc8 = DEFAULT_PERF_MODEL.ipc(phase, VCoreConfig(8, 64))
        assert ipc8 > 2.5 * ipc1

    def test_memory_bound_phase_scales_with_cache(self):
        phase = make_phase(
            ilp=2.0, mem_refs_per_inst=0.4, l1_miss_rate=0.3,
            working_set=((4096, 0.9),),
        )
        small = DEFAULT_PERF_MODEL.ipc(phase, VCoreConfig(2, 64))
        large = DEFAULT_PERF_MODEL.ipc(phase, VCoreConfig(2, 4096))
        assert large > 1.5 * small


class TestGridAndOptima:
    def test_grid_shape_matches_space(self):
        grid = DEFAULT_PERF_MODEL.ipc_grid(make_phase())
        assert grid.shape == (8, 8)

    def test_grid_matches_pointwise_ipc(self):
        phase = make_phase()
        grid = DEFAULT_PERF_MODEL.ipc_grid(phase)
        space = DEFAULT_CONFIG_SPACE
        for i, slices in enumerate(space.slice_counts):
            for j, l2_kb in enumerate(space.l2_sizes_kb):
                assert grid[i, j] == pytest.approx(
                    DEFAULT_PERF_MODEL.ipc(phase, VCoreConfig(slices, l2_kb))
                )

    def test_best_config_is_grid_argmax(self):
        phase = make_phase()
        best, best_ipc = DEFAULT_PERF_MODEL.best_config(phase)
        grid = DEFAULT_PERF_MODEL.ipc_grid(phase)
        assert best_ipc == pytest.approx(grid.max())

    def test_global_optimum_is_a_local_maximum(self):
        phase = make_phase()
        best, _ = DEFAULT_PERF_MODEL.best_config(phase)
        assert best in DEFAULT_PERF_MODEL.local_maxima(phase)

    def test_plateau_phase_yields_multiple_local_maxima(self):
        """A stepped working set creates a non-convex surface."""
        phase = make_phase(
            ilp=2.5,
            mem_refs_per_inst=0.35,
            l1_miss_rate=0.15,
            working_set=((64, 0.3), (512, 0.55), (8192, 0.95)),
        )
        maxima = DEFAULT_PERF_MODEL.local_maxima(phase)
        assert len(maxima) >= 2

    def test_custom_space(self):
        space = ConfigurationSpace(slice_counts=(1, 2), l2_sizes_kb=(64, 128))
        grid = DEFAULT_PERF_MODEL.ipc_grid(make_phase(), space)
        assert grid.shape == (2, 2)


class TestCustomParams:
    def test_longer_memory_delay_hurts_memory_phases(self):
        from repro.arch.params import SliceParams

        slow = PerformanceModel(
            slice_params=SliceParams(memory_delay=400)
        )
        phase = make_phase(l1_miss_rate=0.3)
        config = VCoreConfig(1, 64)
        assert slow.ipc(phase, config) < DEFAULT_PERF_MODEL.ipc(phase, config)
