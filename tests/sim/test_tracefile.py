"""Trace file persistence."""

import pytest

from repro.sim.isa import MicroOp, OpKind
from repro.sim.trace import TraceGenerator
from repro.sim.tracefile import TraceFormatError, load_trace, save_trace
from repro.workloads.apps import make_x264


class TestRoundTrip:
    def test_generated_trace_round_trips(self, tmp_path):
        phase = make_x264().phases[0]
        ops = TraceGenerator(phase, seed=3).generate(400)
        path = tmp_path / "trace.tsv"
        count = save_trace(ops, str(path))
        assert count == 400
        assert load_trace(str(path)) == ops

    def test_replayed_trace_gives_identical_cycles(self, tmp_path):
        from repro.arch.vcore import VCoreConfig
        from repro.sim.pipeline import MultiSlicePipeline

        phase = make_x264().phases[1]
        ops = TraceGenerator(phase, seed=1).generate(600)
        path = tmp_path / "trace.tsv"
        save_trace(ops, str(path))
        replayed = load_trace(str(path))
        original = MultiSlicePipeline(VCoreConfig(2, 128)).run(ops)
        replay = MultiSlicePipeline(VCoreConfig(2, 128)).run(replayed)
        assert original.cycles == replay.cycles

    def test_all_op_kinds_survive(self, tmp_path):
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU, sources=(1, 2), dest=3),
            MicroOp(op_id=1, kind=OpKind.LOAD, sources=(3,), dest=4,
                    address=4096, code_address=64),
            MicroOp(op_id=2, kind=OpKind.STORE, sources=(4,), address=8192),
            MicroOp(op_id=3, kind=OpKind.BRANCH, sources=(4,),
                    mispredicted=True),
        ]
        path = tmp_path / "kinds.tsv"
        save_trace(ops, str(path))
        assert load_trace(str(path)) == ops


class TestErrors:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.txt"
        path.write_text("hello world\n")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_rejects_truncated_trace(self, tmp_path):
        ops = [MicroOp(op_id=0, kind=OpKind.ALU, dest=1)]
        path = tmp_path / "trace.tsv"
        save_trace(ops, str(path))
        content = path.read_text().splitlines()
        content[0] = content[0].replace("count=1", "count=5")
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "trace.tsv"
        path.write_text("#ssim-trace v1 count=1\nnot\tenough\tfields\n")
        with pytest.raises(TraceFormatError):
            load_trace(str(path))
