"""The SSim facade: overheads and tier agreement."""

import pytest

from repro.arch.vcore import VCoreConfig
from repro.sim.ssim import SSim
from repro.workloads.apps import make_x264


@pytest.fixture(scope="module")
def ssim():
    return SSim()


class TestRuntimeOverhead:
    """Section VI-A: ~2000 / 1100 / 977 cycles per runtime iteration."""

    def test_one_slice_near_2000_cycles(self, ssim):
        cycles = ssim.runtime_iteration_cycles(slices=1)
        assert 1500 <= cycles <= 2500

    def test_decreases_with_slices(self, ssim):
        one = ssim.runtime_iteration_cycles(slices=1)
        two = ssim.runtime_iteration_cycles(slices=2)
        three = ssim.runtime_iteration_cycles(slices=3)
        assert one > two > three

    def test_three_slice_near_paper_value(self, ssim):
        cycles = ssim.runtime_iteration_cycles(slices=3)
        assert 700 <= cycles <= 1300

    def test_not_application_dependent(self, ssim):
        """The runtime's own instruction stream is fixed."""
        a = ssim.runtime_iteration_cycles(slices=1, seed=7)
        b = ssim.runtime_iteration_cycles(slices=1, seed=7)
        assert a == b

    def test_rejects_bad_arguments(self, ssim):
        with pytest.raises(ValueError):
            ssim.runtime_iteration_cycles(slices=0)
        with pytest.raises(ValueError):
            ssim.runtime_iteration_cycles(iterations=0)


class TestTierAgreement:
    def test_fast_tier_tracks_cycle_tier_on_small_configs(self, ssim):
        """The analytic model should predict the cycle tier within a
        factor-level bound on modest virtual cores."""
        phase = make_x264().phases[0]
        for config in (VCoreConfig(1, 64), VCoreConfig(2, 256),
                       VCoreConfig(4, 512)):
            result = ssim.run_cycle_accurate(phase, config, instructions=2500)
            assert result.relative_error < 0.5

    def test_tiers_agree_on_ordering(self, ssim):
        """Both tiers must rank a weak and a strong configuration the
        same way — the runtime only needs relative judgements."""
        phase = make_x264().phases[1]  # compute-heavy
        weak = ssim.run_cycle_accurate(phase, VCoreConfig(1, 64), 2500)
        strong = ssim.run_cycle_accurate(phase, VCoreConfig(4, 256), 2500)
        assert strong.measured_ipc > weak.measured_ipc
        assert strong.predicted_ipc > weak.predicted_ipc

    def test_compare_tiers_returns_per_config_results(self, ssim):
        phase = make_x264().phases[0]
        configs = [VCoreConfig(1, 64), VCoreConfig(2, 128)]
        results = ssim.compare_tiers(phase, configs, instructions=1500)
        assert len(results) == 2
        assert all(r.measured_ipc > 0 for r in results)

    def test_explicit_trace_reused(self, ssim):
        from repro.sim.trace import TraceGenerator

        phase = make_x264().phases[0]
        trace = TraceGenerator(phase, seed=5).generate(1000)
        a = ssim.run_cycle_accurate(phase, VCoreConfig(1, 64), trace=trace)
        b = ssim.run_cycle_accurate(phase, VCoreConfig(1, 64), trace=trace)
        assert a.measured_ipc == b.measured_ipc
