"""Memoized operating-point tables and the vectorized kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, DEFAULT_CONFIG_SPACE
from repro.runtime.optimizer import compute_envelope
from repro.sim.optables import (
    OperatingPointTable,
    build_table_scalar,
    build_table_vectorized,
    cache_clear,
    cache_info,
    operating_point_table,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_apache, make_x264
from repro.workloads.phase import Phase

MODEL = DEFAULT_PERF_MODEL
SPACE = DEFAULT_CONFIG_SPACE


@st.composite
def phases(draw):
    """Random but valid phases (non-decreasing working-set spectrum)."""
    n = draw(st.integers(1, 4))
    sizes = draw(
        st.lists(
            st.sampled_from([64 * 2 ** i for i in range(8)]),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    fractions = draw(
        st.lists(st.floats(0.05, 1.0), min_size=n, max_size=n)
    )
    return Phase(
        name="rand",
        instructions_m=draw(st.floats(1.0, 50.0)),
        ilp=draw(st.floats(0.5, 6.0)),
        mem_refs_per_inst=draw(st.floats(0.05, 0.6)),
        l1_miss_rate=draw(st.floats(0.01, 0.5)),
        working_set=tuple(zip(sorted(sizes), sorted(fractions))),
        mlp=draw(st.floats(1.0, 8.0)),
        comm_penalty=draw(st.floats(0.0, 0.2)),
    )


class TestVectorizedKernel:
    @given(phase=phases())
    @settings(max_examples=60, deadline=None)
    def test_ipc_grid_matches_scalar_everywhere(self, phase):
        grid = MODEL.ipc_grid(phase, SPACE).ravel()
        for index, config in enumerate(SPACE):
            assert grid[index] == pytest.approx(
                MODEL.ipc(phase, config), abs=1e-12
            )

    @given(phase=phases())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_table_bit_identical_to_scalar(self, phase):
        scalar = build_table_scalar(phase, MODEL, SPACE)
        vectorized = build_table_vectorized(phase, MODEL, SPACE)
        assert tuple(scalar) == tuple(vectorized)

    def test_real_application_phases_bit_identical(self):
        for app in (make_x264(), make_apache()):
            for phase in app.phases:
                assert tuple(build_table_scalar(phase)) == tuple(
                    build_table_vectorized(phase)
                )

    def test_nondefault_space(self):
        space = ConfigurationSpace(
            slice_counts=(1, 3, 8), l2_sizes_kb=(128, 1024)
        )
        phase = make_x264().phases[0]
        assert tuple(build_table_scalar(phase, MODEL, space)) == tuple(
            build_table_vectorized(phase, MODEL, space)
        )


class TestOperatingPointTable:
    def setup_method(self):
        self.table = build_table_scalar(make_x264().phases[0])

    def test_sequence_protocol(self):
        assert len(self.table) == len(SPACE)
        assert list(self.table)[0] == self.table[0]

    def test_get_ipc(self):
        point = self.table[5]
        assert self.table.get_ipc(point.config) == point.speedup

    def test_get_ipc_unknown_config_is_none(self):
        space = ConfigurationSpace(slice_counts=(1,), l2_sizes_kb=(64,))
        small = build_table_scalar(make_x264().phases[0], MODEL, space)
        assert small.get_ipc(self.table[-1].config) is None

    def test_max_qos(self):
        assert self.table.max_qos == max(p.speedup for p in self.table)

    def test_envelope_cached_and_exact(self):
        hull, best_at = self.table.envelope()
        fresh_hull, fresh_best = compute_envelope(list(self.table.points))
        # Cached envelopes are published frozen: tuple hull, read-only
        # best_at view — same contents as the scratch computation.
        assert list(hull) == fresh_hull
        assert best_at == fresh_best
        assert self.table.envelope() is self.table.envelope()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            OperatingPointTable(())


class TestTableCache:
    def setup_method(self):
        cache_clear()

    def teardown_method(self):
        cache_clear()

    def test_hit_returns_same_object(self):
        phase = make_x264().phases[0]
        first = operating_point_table(phase, MODEL, SPACE)
        second = operating_point_table(phase, MODEL, SPACE)
        assert first is second
        assert cache_info()["hits"] >= 1

    def test_keyed_by_value_not_identity(self):
        phase = make_x264().phases[0]
        clone = Phase(**{f: getattr(phase, f) for f in (
            "name", "instructions_m", "ilp", "mem_refs_per_inst",
            "l1_miss_rate", "working_set", "mlp", "comm_penalty",
        )})
        assert clone is not phase
        assert operating_point_table(phase, MODEL, SPACE) is (
            operating_point_table(clone, MODEL, SPACE)
        )

    def test_distinct_phases_get_distinct_tables(self):
        first, second = make_x264().phases[:2]
        assert operating_point_table(first, MODEL, SPACE) is not (
            operating_point_table(second, MODEL, SPACE)
        )

    def test_cached_equals_scalar_reference(self):
        for phase in make_x264().phases:
            assert tuple(operating_point_table(phase, MODEL, SPACE)) == tuple(
                build_table_scalar(phase, MODEL, SPACE, DEFAULT_COST_MODEL)
            )

    def test_reference_mode_bypasses_cache(self):
        phase = make_x264().phases[0]
        with perf.fast_paths(False):
            first = operating_point_table(phase, MODEL, SPACE)
            second = operating_point_table(phase, MODEL, SPACE)
        assert first is not second
        assert tuple(first) == tuple(second)
        assert cache_info()["size"] == 0
