"""Instruction-side modelling: L1I, code footprints, steady state."""

import pytest

from repro.arch.vcore import VCoreConfig
from repro.sim.memsys import MemorySystem
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


def make_phase(code_kb, **overrides):
    defaults = dict(
        name="p",
        instructions_m=1,
        ilp=3.0,
        mem_refs_per_inst=0.2,
        l1_miss_rate=0.05,
        working_set=((128, 0.9),),
        code_footprint_kb=code_kb,
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestMemorySystemFetch:
    def test_fetch_miss_then_hit(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        first = mem.fetch(0, 2 << 40)
        second = mem.fetch(0, 2 << 40)
        assert first.level in ("l2", "memory")
        assert second.level == "l1"
        assert mem.stats()["l1i_misses"] == 1
        assert mem.stats()["l1i_hits"] == 1

    def test_icaches_are_per_slice(self):
        mem = MemorySystem(VCoreConfig(2, 128))
        mem.fetch(0, 2 << 40)
        result = mem.fetch(1, 2 << 40)
        assert result.level != "l1"

    def test_fetch_rejects_unknown_slice(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        with pytest.raises(ValueError):
            mem.fetch(5, 0)

    def test_prewarm_makes_code_resident(self):
        mem = MemorySystem(VCoreConfig(2, 128))
        addresses = [(2 << 40) + block * 64 for block in range(64)]  # 4 KB
        mem.prewarm_code(addresses)
        for slice_id in (0, 1):
            for address in addresses:
                assert mem.fetch(slice_id, address).level == "l1"

    def test_prewarm_leaves_no_statistics(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        mem.prewarm_code([(2 << 40) + block * 64 for block in range(16)])
        stats = mem.stats()
        assert stats["l1i_misses"] == 0
        assert stats["l2_misses"] == 0


class TestCodeFootprintBehaviour:
    def test_trace_ops_carry_code_addresses(self):
        ops = TraceGenerator(make_phase(8), seed=0).generate(500)
        assert all(op.code_address is not None for op in ops)
        assert all(op.code_address % 64 == 0 for op in ops)

    def test_code_addresses_stay_within_footprint(self):
        ops = TraceGenerator(make_phase(8), seed=0).generate(2000)
        base = 2 << 40
        for op in ops:
            assert base <= op.code_address < base + 8 * 1024

    def test_small_footprint_never_misses_in_steady_state(self):
        trace = TraceGenerator(make_phase(8), seed=0).generate(2000)
        result = MultiSlicePipeline(VCoreConfig(2, 128)).run(trace)
        assert result.l1i_misses == 0

    def test_large_footprint_thrashes_the_l1i(self):
        """A 64 KB loop cannot stay in a 16 KB L1I (Table II)."""
        trace = TraceGenerator(make_phase(64), seed=0).generate(3000)
        result = MultiSlicePipeline(VCoreConfig(2, 256)).run(trace)
        assert result.l1i_misses > 100

    def test_large_footprint_slows_execution(self):
        small = TraceGenerator(make_phase(8), seed=0).generate(3000)
        large = TraceGenerator(make_phase(64), seed=0).generate(3000)
        config = VCoreConfig(2, 256)
        ipc_small = MultiSlicePipeline(config).run(small).ipc
        ipc_large = MultiSlicePipeline(config).run(large).ipc
        assert ipc_large < 0.8 * ipc_small

    def test_phase_rejects_bad_footprint(self):
        with pytest.raises(ValueError):
            make_phase(0)
