"""Batch tier vs object pipeline: bit-identity under every dispatch.

Every cell :func:`repro.sim.batchpipe.run_batch` advances must come
back *bit-identical* to ``MultiSlicePipeline.run`` on the same trace —
the :class:`PipelineResult`, every per-Slice counter and the full
memory-system stats — across random phase mixes, batch sizes
{1, 3, 8} and Slice counts {1, 2, 4, 8}, whether the compiled kernel
runs, the native core is disabled, or fast paths are off entirely.
"""

import random

import pytest

from repro import native, perf
from repro.arch.counters import CounterKind
from repro.arch.params import DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig
from repro.sim.batchpipe import BatchCell, run_batch
from repro.sim.isa import MicroOp, OpKind
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.soa import TraceArrays
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


@pytest.fixture(autouse=True)
def restore_switches():
    yield
    perf.set_fast_paths(True)
    native.set_native_enabled(True)


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.3,
        l1_miss_rate=0.1,
        working_set=((256, 0.6), (2048, 0.9)),
        branch_fraction=0.15,
        mispredict_rate=0.05,
    )
    defaults.update(overrides)
    return Phase(**defaults)


PHASES = (
    make_phase(name="balanced"),
    make_phase(name="memory", mem_refs_per_inst=0.5, l1_miss_rate=0.3),
    make_phase(name="compute", ilp=6.0, mem_refs_per_inst=0.05),
    make_phase(name="branchy", branch_fraction=0.3, mispredict_rate=0.2),
)

SLICE_LADDER = (1, 2, 4, 8)


def generate_trace(phase, seed, instructions=500):
    generator = TraceGenerator(
        phase, DEFAULT_SLICE_PARAMS.physical_registers, seed=seed
    )
    return generator.generate_arrays(instructions)


def object_snapshot(cell):
    """What the event-driven twin produces for one cell."""
    pipeline = MultiSlicePipeline(cell.config)
    result = pipeline.run(cell.trace.to_ops())
    counters = [
        {kind: block.value(kind) for kind in CounterKind}
        for block in pipeline.counters
    ]
    return result, counters, pipeline.memory.stats()


def assert_batch_matches_objects(cells):
    outcomes = run_batch(cells)
    assert len(outcomes) == len(cells)
    for cell, outcome in zip(cells, outcomes):
        result, counters, memory_stats = object_snapshot(cell)
        assert outcome.result == result
        assert outcome.memory_stats == memory_stats
        assert len(outcome.counters) == len(counters)
        for block, expected in zip(outcome.counters, counters):
            assert {
                kind: block.value(kind) for kind in CounterKind
            } == expected


def mixed_cells(batch_size, seed):
    """A random phase mix across the full Slice ladder."""
    rng = random.Random(seed)
    cells = []
    for index in range(batch_size):
        phase = rng.choice(PHASES)
        slices = SLICE_LADDER[index % len(SLICE_LADDER)]
        trace = generate_trace(phase, seed=rng.randrange(1000))
        cells.append(
            BatchCell(
                trace=trace,
                config=VCoreConfig(slices=slices, l2_kb=64 * slices),
            )
        )
    return cells


class TestBitIdentity:
    @pytest.mark.parametrize("batch_size", [1, 3, 8])
    def test_random_mix_matches_object_pipeline(self, batch_size):
        assert_batch_matches_objects(mixed_cells(batch_size, seed=batch_size))

    @pytest.mark.parametrize("slices", SLICE_LADDER)
    def test_every_slice_count(self, slices):
        trace = generate_trace(PHASES[0], seed=7)
        cells = [
            BatchCell(
                trace=trace, config=VCoreConfig(slices=slices, l2_kb=256)
            )
        ]
        assert_batch_matches_objects(cells)

    def test_shared_trace_across_configs(self):
        # The sweep shape: one trace, the whole configuration ladder.
        trace = generate_trace(PHASES[1], seed=3)
        cells = [
            BatchCell(
                trace=trace,
                config=VCoreConfig(slices=slices, l2_kb=64 * slices),
            )
            for slices in SLICE_LADDER
        ]
        assert_batch_matches_objects(cells)

    def test_native_disabled_fallback_is_identical(self):
        cells = mixed_cells(3, seed=11)
        with perf.fast_paths(True):
            native_outcomes = run_batch(cells)
            native.set_native_enabled(False)
            fallback_outcomes = run_batch(cells)
            native.set_native_enabled(True)
        for via_native, via_objects in zip(native_outcomes, fallback_outcomes):
            assert via_native.result == via_objects.result
            assert via_native.memory_stats == via_objects.memory_stats

    def test_scalar_mode_matches(self):
        cells = mixed_cells(2, seed=5)
        with perf.fast_paths(False):
            assert_batch_matches_objects(cells)


class TestDispatch:
    def test_empty_batch(self):
        assert run_batch([]) == []

    def test_wide_sources_fall_back_to_object_path(self):
        # Three source registers exceed the kernel's producer width;
        # the batch API must still answer (through the object twin).
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU, dest=1, code_address=0),
            MicroOp(op_id=1, kind=OpKind.ALU, dest=2, code_address=64),
            MicroOp(op_id=2, kind=OpKind.ALU, dest=3, code_address=128),
            MicroOp(
                op_id=3,
                kind=OpKind.ALU,
                sources=(1, 2, 3),
                code_address=192,
            ),
        ]
        trace = TraceArrays.from_ops(ops)
        assert trace.source_width == 3
        cells = [BatchCell(trace=trace, config=VCoreConfig(slices=1, l2_kb=64))]
        assert_batch_matches_objects(cells)

    def test_results_come_back_in_cell_order(self):
        trace_a = generate_trace(PHASES[0], seed=1)
        trace_b = generate_trace(PHASES[2], seed=2)
        cells = [
            BatchCell(trace=trace_a, config=VCoreConfig(slices=2, l2_kb=128)),
            BatchCell(trace=trace_b, config=VCoreConfig(slices=1, l2_kb=64)),
            BatchCell(trace=trace_a, config=VCoreConfig(slices=4, l2_kb=256)),
        ]
        outcomes = run_batch(cells)
        for cell, outcome in zip(cells, outcomes):
            assert outcome.result.config == cell.config
            assert outcome.result.instructions == len(cell.trace)
