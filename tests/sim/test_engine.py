"""The cycle/event simulation core."""

import pytest

from repro.sim.engine import SimulationClock


class _Recorder:
    def __init__(self):
        self.ticks = []

    def tick(self, cycle):
        self.ticks.append(cycle)


class TestSimulationClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0

    def test_step_advances(self):
        clock = SimulationClock()
        assert clock.step(5) == 5
        assert clock.now == 5

    def test_step_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SimulationClock().step(0)

    def test_components_tick_every_cycle(self):
        clock = SimulationClock()
        recorder = _Recorder()
        clock.register(recorder)
        clock.step(3)
        assert recorder.ticks == [1, 2, 3]

    def test_events_fire_at_deadline(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(4, fired.append)
        clock.step(3)
        assert fired == []
        clock.step(1)
        assert fired == [4]

    def test_events_fire_in_order(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(2, lambda c: fired.append("b"))
        clock.schedule(1, lambda c: fired.append("a"))
        clock.step(5)
        assert fired == ["a", "b"]

    def test_same_deadline_fifo(self):
        clock = SimulationClock()
        fired = []
        clock.schedule(1, lambda c: fired.append("first"))
        clock.schedule(1, lambda c: fired.append("second"))
        clock.step(1)
        assert fired == ["first", "second"]

    def test_schedule_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            SimulationClock().schedule(-1, lambda c: None)

    def test_events_can_schedule_events(self):
        clock = SimulationClock()
        fired = []

        def chain(cycle):
            fired.append(cycle)
            if len(fired) < 3:
                clock.schedule(2, chain)

        clock.schedule(1, chain)
        clock.step(10)
        assert fired == [1, 3, 5]

    def test_run_until(self):
        clock = SimulationClock()
        done = []
        clock.schedule(7, done.append)
        cycle = clock.run_until(lambda: bool(done))
        assert cycle == 7

    def test_run_until_limit(self):
        clock = SimulationClock()
        with pytest.raises(RuntimeError):
            clock.run_until(lambda: False, limit=10)
