"""The shared tiers (L2 shm, L3 disk) of the operating-point store.

Covers the acceptance claims of the tiered store: content digests are
stable; disk entries survive a round trip bit-identically and any
truncated/bit-flipped entry degrades to a clean rebuild; two processes
racing table creation build exactly once fleet-wide; a ``cache clear``
against an idle store leaves the engine fully functional; and the
sanitizer catches a corrupted shared segment at attach.
"""

import hashlib
import multiprocessing

import numpy as np
import pytest

from repro import cacheconf, perf
from repro.analysis import sanitize
from repro.arch.vcore import ConfigurationSpace
from repro.sim import optstore
from repro.sim.optables import (
    build_table_scalar,
    cache_clear,
    ensure_surface,
    operating_point_table,
    optable_cache_stats,
)
from repro.workloads.apps import make_x264

SPACE = ConfigurationSpace(slice_counts=(1, 2, 4), l2_sizes_kb=(64, 256))
VALUES = len(SPACE.slice_counts) * len(SPACE.l2_sizes_kb)


@pytest.fixture(autouse=True)
def clean_store():
    """Every test starts and ends with no store, no L1, no disk tier."""
    previous = perf.FAST
    previous_sanitize = sanitize.ENABLED
    perf.set_fast_paths(True)
    sanitize.set_enabled(False)
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    yield
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    sanitize.set_enabled(previous_sanitize)
    perf.set_fast_paths(previous)


def surface(seed=0):
    """A synthetic (speedups, hull) payload for direct tier tests."""
    rng = np.random.default_rng(seed)
    speedups = rng.uniform(0.5, 8.0, size=VALUES)
    hull = np.array([[0.0, 0.0], [float(speedups.max()), 1.0]])
    return speedups, hull


class TestDigest:
    def test_digest_is_deterministic(self):
        key = ("phase", 1.5, (2, 3))
        assert optstore.table_digest(key, 6) == optstore.table_digest(key, 6)

    def test_digest_separates_keys_and_grids(self):
        assert optstore.table_digest(("a",), 6) != optstore.table_digest(
            ("b",), 6
        )
        assert optstore.table_digest(("a",), 6) != optstore.table_digest(
            ("a",), 8
        )

    def test_schema_version_participates(self, monkeypatch):
        key = ("phase",)
        before = optstore.table_digest(key, 6)
        monkeypatch.setattr(cacheconf, "SCHEMA_VERSION", 999)
        assert optstore.table_digest(key, 6) != before


class TestDiskTier:
    def test_round_trip_is_bit_identical(self, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        speedups, hull = surface()
        digest = optstore.table_digest(("round-trip",), VALUES)
        with optstore.build_guard():
            fingerprint = optstore.publish(digest, speedups, hull)
        loaded = optstore.lookup(digest, VALUES)
        assert loaded is not None
        assert loaded.source == "disk"
        assert loaded.checksum == fingerprint
        assert loaded.speedups.tobytes() == speedups.tobytes()
        assert loaded.hull is not None
        assert loaded.hull.tobytes() == hull.tobytes()
        assert not loaded.speedups.flags.writeable

    def test_disk_off_means_no_files_and_no_hits(self, tmp_path):
        speedups, hull = surface()
        digest = optstore.table_digest(("disk-off",), VALUES)
        with optstore.build_guard():
            optstore.publish(digest, speedups, hull)
        assert optstore.lookup(digest, VALUES) is None
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("damage", ["truncate", "bitflip"])
    def test_damaged_entry_is_a_miss_then_self_heals(self, tmp_path, damage):
        cacheconf.set_cache_dir(tmp_path)
        speedups, hull = surface()
        digest = optstore.table_digest(("damaged", damage), VALUES)
        with optstore.build_guard():
            fingerprint = optstore.publish(digest, speedups, hull)
        (path,) = tmp_path.glob("*.npz")
        raw = bytearray(path.read_bytes())
        if damage == "truncate":
            raw = raw[: len(raw) // 2]
        else:
            raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))

        assert optstore.lookup(digest, VALUES) is None
        counts = optstore.counters_local()
        assert counts["corrupt"] >= 1
        assert counts["l3_misses"] >= 1

        # The rebuild overwrites the damaged file and the cache heals.
        with optstore.build_guard():
            assert optstore.publish(digest, speedups, hull) == fingerprint
        healed = optstore.lookup(digest, VALUES)
        assert healed is not None
        assert healed.checksum == fingerprint
        assert healed.speedups.tobytes() == speedups.tobytes()

    def test_wrong_grid_size_is_a_miss(self, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        speedups, hull = surface()
        digest = optstore.table_digest(("wrong-size",), VALUES)
        with optstore.build_guard():
            optstore.publish(digest, speedups, hull)
        assert optstore.lookup(digest, VALUES + 1) is None

    def test_disk_clear_counts_entries(self, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        for index in range(3):
            speedups, hull = surface(index)
            with optstore.build_guard():
                optstore.publish(
                    optstore.table_digest(("clear", index), VALUES),
                    speedups,
                    hull,
                )
        assert optstore.disk_clear() == 3
        assert optstore.disk_clear() == 0


class TestShmTier:
    def test_publish_then_attach_is_zero_copy(self):
        handle = optstore.ensure()
        if handle is None:
            pytest.skip("no shared memory on this platform")
        speedups, hull = surface()
        digest = optstore.table_digest(("shm",), VALUES)
        with optstore.build_guard():
            fingerprint = optstore.publish(digest, speedups, hull)
        # Re-attach with a cold view cache, as a fresh worker would.
        optstore.detach()
        optstore.attach(handle)
        loaded = optstore.lookup(digest, VALUES)
        assert loaded is not None
        assert loaded.source == "shm"
        assert loaded.checksum == fingerprint
        assert loaded.speedups.tobytes() == speedups.tobytes()
        assert not loaded.speedups.flags.writeable
        assert not loaded.speedups.flags.owndata  # view onto the segment

    def test_capacity_exhaustion_degrades_quietly(self):
        try:
            optstore.create(slots=4, capacity=1)
        except OSError:  # pragma: no cover - no shm on this platform
            pytest.skip("no shared memory on this platform")
        first, hull = surface(1)
        second, _ = surface(2)
        with optstore.build_guard():
            optstore.publish(optstore.table_digest(("cap", 1), VALUES), first, hull)
            optstore.publish(optstore.table_digest(("cap", 2), VALUES), second, hull)
        stats = optstore.stats()
        assert stats["shm"]["published"] == 1
        # The second surface simply missed the shm tier (disk is off).
        assert optstore.lookup(optstore.table_digest(("cap", 2), VALUES), VALUES) is None
        assert optstore.counters_local()["builds"] == 2

    def test_sanitizer_catches_corrupted_segment(self):
        handle = optstore.ensure()
        if handle is None:
            pytest.skip("no shared memory on this platform")
        speedups, hull = surface()
        digest = optstore.table_digest(("corrupt-shm",), VALUES)
        with optstore.build_guard():
            optstore.publish(digest, speedups, hull)
        # Flip one payload byte in the raw segment.
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=f"{handle.prefix}{digest}")
        try:
            offset = 64 + 3  # past the 64-byte header, mid-payload
            segment.buf[offset] = (segment.buf[offset] + 1) % 256
        finally:
            optstore._unregister_attached(segment)
            segment.close()
        optstore.detach()
        optstore.attach(handle)
        with sanitize.sanitized(True):
            with pytest.raises(sanitize.SanitizerViolation):
                optstore.lookup(digest, VALUES)
        # Unsanitized: the same damage is just a counted miss.
        optstore.detach()
        optstore.attach(handle)
        assert optstore.lookup(digest, VALUES) is None
        assert optstore.counters_local()["corrupt"] >= 1

    def test_inflight_publish_is_a_miss_not_corruption(self):
        # A lock-free reader can open a segment after its create but
        # before the magic word commits; the zero-filled header must
        # read as "not published yet", never as damage — sanitized
        # parallel cold runs raced exactly this way.
        handle = optstore.ensure()
        if handle is None:
            pytest.skip("no shared memory on this platform")
        speedups, hull = surface()
        digest = optstore.table_digest(("inflight",), VALUES)
        with optstore.build_guard():
            optstore.publish(digest, speedups, hull)
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=f"{handle.prefix}{digest}")
        try:
            committed = bytes(segment.buf[:8])
            segment.buf[:8] = b"\x00" * 8  # uncommit: publish in flight
            optstore.detach()
            optstore.attach(handle)
            with sanitize.sanitized(True):
                assert optstore.lookup(digest, VALUES) is None
            counts = optstore.counters_local()
            assert counts["corrupt"] == 0
            assert counts["l2_misses"] >= 1
            segment.buf[:8] = committed  # commit lands: ordinary hit
            optstore.detach()
            optstore.attach(handle)
            loaded = optstore.lookup(digest, VALUES)
            assert loaded is not None
            assert loaded.speedups.tobytes() == speedups.tobytes()
        finally:
            optstore._unregister_attached(segment)
            segment.close()

    def test_destroy_unlinks_everything(self):
        handle = optstore.ensure()
        if handle is None:
            pytest.skip("no shared memory on this platform")
        speedups, hull = surface()
        digest = optstore.table_digest(("destroyed",), VALUES)
        with optstore.build_guard():
            optstore.publish(digest, speedups, hull)
        optstore.destroy()
        assert not optstore.active()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.index_name)


def _race_child(handle, barrier, queue, phase):
    perf.set_fast_paths(True)
    optstore.attach(handle)
    barrier.wait()
    table = operating_point_table(phase, space=SPACE)
    queue.put(hashlib.sha256(table.speedup_array.tobytes()).hexdigest())


class TestCreationRace:
    def test_two_processes_build_exactly_once(self):
        handle = optstore.ensure()
        if handle is None:
            pytest.skip("no shared memory on this platform")
        optstore.reset_counters(fleet=True)
        phase = make_x264().phases[0]
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        workers = [
            context.Process(
                target=_race_child, args=(handle, barrier, queue, phase)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        fingerprints = {queue.get(timeout=60) for _ in workers}
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert len(fingerprints) == 1
        fleet = optstore.counters_fleet()
        assert fleet["builds"] == 1
        assert fleet["l2_hits"] >= 1  # the loser attached to the winner's
        # The parent sees the published surface too.
        cache_clear()
        table = operating_point_table(phase, space=SPACE)
        assert (
            hashlib.sha256(table.speedup_array.tobytes()).hexdigest()
            in fingerprints
        )


class TestWarmPaths:
    def test_ensure_surface_builds_once_and_is_stable(self, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        phase = make_x264().phases[0]
        cold = ensure_surface(phase, space=SPACE)
        builds = optstore.counters_local()["builds"]
        warm = ensure_surface(phase, space=SPACE)
        assert warm == cold
        assert optstore.counters_local()["builds"] == builds

    def test_disk_warm_table_matches_scalar_reference(self, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        phase = make_x264().phases[0]
        ensure_surface(phase, space=SPACE)
        cache_clear()
        table = operating_point_table(phase, space=SPACE)
        reference = build_table_scalar(phase, space=SPACE)
        assert tuple(table) == tuple(reference)
        assert table.envelope() is not None
        hull, _ = table.envelope()
        ref_hull, _ = reference.envelope()
        assert list(hull) == list(ref_hull)
        assert optstore.counters_local()["l3_hits"] >= 1

    def test_shm_warm_table_aliases_the_segment(self):
        if optstore.ensure() is None:  # pragma: no cover
            pytest.skip("no shared memory on this platform")
        phase = make_x264().phases[0]
        ensure_surface(phase, space=SPACE)
        cache_clear()
        table = operating_point_table(phase, space=SPACE)
        assert not table.speedup_array.flags.owndata
        assert tuple(table) == tuple(build_table_scalar(phase, space=SPACE))

    def test_cache_clear_on_idle_store_keeps_engine_green(self, tmp_path):
        # The `repro cache clear` sequence against an idle store.
        cacheconf.set_cache_dir(tmp_path)
        phase = make_x264().phases[0]
        ensure_surface(phase, space=SPACE)
        cache_clear()
        optstore.destroy()
        assert optstore.disk_clear() >= 1
        table = operating_point_table(phase, space=SPACE)
        assert tuple(table) == tuple(build_table_scalar(phase, space=SPACE))


class TestStats:
    def test_stats_shape(self):
        stats = optable_cache_stats()
        assert set(stats) == {"l1", "local", "fleet", "shm", "disk"}
        assert set(stats["local"]) == set(optstore.COUNTERS)
        assert set(stats["fleet"]) == set(optstore.COUNTERS)
        assert stats["disk"]["enabled"] is False

    def test_fleet_equals_local_without_a_store(self):
        optstore.bump("l1_hits", 3)
        assert optstore.counters_fleet() == optstore.counters_local()

    def test_reset_counters(self):
        optstore.bump("builds", 5)
        optstore.reset_counters()
        assert optstore.counters_local()["builds"] == 0
