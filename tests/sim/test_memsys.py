"""The cycle tier's memory system."""

import pytest

from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig
from repro.sim.memsys import MemorySystem


class TestLevelsAndLatencies:
    def test_first_access_goes_to_memory(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        result = mem.access(0, 0x1000, is_write=False)
        assert result.level == "memory"
        # L1 lookup + L2 lookup + memory delay.
        assert result.cycles >= 3 + 4 + 100

    def test_second_access_hits_l1(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        mem.access(0, 0x1000, False)
        result = mem.access(0, 0x1000, False)
        assert result.level == "l1"
        assert result.cycles == DEFAULT_CACHE_PARAMS.l1_hit_delay

    def test_l2_hit_after_l1_eviction(self):
        mem = MemorySystem(VCoreConfig(1, 256))
        level = DEFAULT_CACHE_PARAMS.l1d
        stride = level.num_sets * level.block_bytes
        mem.access(0, 0, False)
        # Evict block 0 from the (2-way) L1 set with conflicting blocks.
        for i in range(1, level.associativity + 1):
            mem.access(0, i * stride, False)
        result = mem.access(0, 0, False)
        assert result.level == "l2"
        assert result.cycles > DEFAULT_CACHE_PARAMS.l1_hit_delay

    def test_bank_distance_grows_cost(self):
        small = MemorySystem(VCoreConfig(1, 64))
        large = MemorySystem(VCoreConfig(1, 8192))
        # Find an address resident in L2 for both: first access installs.
        small.access(0, 0, False)
        large.access(0, 0, False)
        far_delay = max(bank.hit_delay for bank in large.l2.banks)
        near_delay = small.l2.banks[0].hit_delay
        assert far_delay > near_delay

    def test_per_slice_l1s_are_private(self):
        mem = MemorySystem(VCoreConfig(2, 128))
        mem.access(0, 0x2000, False)
        result = mem.access(1, 0x2000, False)
        assert result.level != "l1"  # slice 1's L1 never saw it

    def test_l2_shared_across_slices(self):
        mem = MemorySystem(VCoreConfig(2, 128))
        mem.access(0, 0x2000, False)
        result = mem.access(1, 0x2000, False)
        assert result.level == "l2"

    def test_rejects_unknown_slice(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        with pytest.raises(ValueError):
            mem.access(3, 0, False)

    def test_stats(self):
        mem = MemorySystem(VCoreConfig(1, 64))
        mem.access(0, 0, False)
        mem.access(0, 0, False)
        stats = mem.stats()
        assert stats["l1_hits"] == 1
        assert stats["l2_misses"] == 1

    def test_bank_count_matches_config(self):
        mem = MemorySystem(VCoreConfig(2, 512))
        assert mem.l2.num_banks == 8
