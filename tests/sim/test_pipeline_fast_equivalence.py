"""The event-driven cycle tier is an optimization, never a model change.

Every trace here runs twice through :class:`MultiSlicePipeline` — fast
paths on (wakeup scoreboard, cycle skipping, the load-release heap) and
off (the seed's per-cycle scalar scan) — and must produce *identical*
results: the :class:`PipelineResult`, every per-Slice counter, and the
full memory-hierarchy statistics.  Likewise the vectorized trace
generator: same micro-op sequence, same RNG state afterwards, so a
fixed-seed experiment is bit-for-bit reproducible with the switch in
either position.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.arch.counters import CounterKind
from repro.arch.vcore import VCoreConfig
from repro.sim.isa import MicroOp, OpKind
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.ssim import SSim
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase


@pytest.fixture(autouse=True)
def restore_fast_paths():
    yield
    perf.set_fast_paths(True)


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.3,
        l1_miss_rate=0.1,
        working_set=((256, 0.6), (2048, 0.9)),
        branch_fraction=0.15,
        mispredict_rate=0.05,
    )
    defaults.update(overrides)
    return Phase(**defaults)


def run_both_ways(trace, config):
    """Run ``trace`` with fast paths on and off; return both snapshots."""
    snapshots = []
    for enabled in (True, False):
        with perf.fast_paths(enabled):
            pipeline = MultiSlicePipeline(config)
            result = pipeline.run(trace)
        counters = [
            {kind: c.value(kind) for kind in CounterKind}
            for c in pipeline.counters
        ]
        snapshots.append((result, counters, pipeline.memory.stats()))
    return snapshots


def assert_identical(trace, config):
    fast, reference = run_both_ways(trace, config)
    assert fast[0] == reference[0]  # PipelineResult
    assert fast[1] == reference[1]  # per-Slice counters
    assert fast[2] == reference[2]  # memory-hierarchy stats


class TestHandcraftedTraces:
    """Targeted shapes: each exercises one event-driven mechanism."""

    def test_dependent_alu_chain(self):
        # Serial chain: every wakeup comes through the scoreboard.
        ops = [
            MicroOp(op_id=i, kind=OpKind.ALU, sources=(1,) if i else (0,), dest=1)
            for i in range(300)
        ]
        assert_identical(ops, VCoreConfig(2, 128))

    def test_independent_alu_ops(self):
        ops = [
            MicroOp(op_id=i, kind=OpKind.ALU, sources=(0,), dest=1 + i % 60)
            for i in range(300)
        ]
        assert_identical(ops, VCoreConfig(4, 256))

    def test_streaming_loads_exercise_release_heap(self):
        # Every load misses: the load-release heap carries the schedule.
        ops = []
        for i in range(400):
            if i % 2:
                ops.append(
                    MicroOp(
                        op_id=i,
                        kind=OpKind.LOAD,
                        sources=(0,),
                        dest=1 + i % 50,
                        address=i * 64 + (1 << 35),
                    )
                )
            else:
                ops.append(
                    MicroOp(op_id=i, kind=OpKind.ALU, sources=(0,), dest=1)
                )
        assert_identical(ops, VCoreConfig(2, 64))

    def test_stores_and_loads_interleaved(self):
        ops = []
        for i in range(300):
            address = (i % 16) * 64
            if i % 3 == 0:
                ops.append(
                    MicroOp(
                        op_id=i, kind=OpKind.STORE, sources=(0,), address=address
                    )
                )
            else:
                ops.append(
                    MicroOp(
                        op_id=i,
                        kind=OpKind.LOAD,
                        sources=(0,),
                        dest=1 + i % 30,
                        address=address,
                    )
                )
        assert_identical(ops, VCoreConfig(8, 512))

    def test_mispredicted_branches_flush(self):
        ops = []
        for i in range(300):
            if i % 7 == 0:
                ops.append(
                    MicroOp(
                        op_id=i,
                        kind=OpKind.BRANCH,
                        sources=(0,),
                        mispredicted=(i % 14 == 0),
                        code_address=(2 << 40) + (i % 5) * 64,
                        taken=True,
                        branch_target=(2 << 40),
                    )
                )
            else:
                ops.append(
                    MicroOp(op_id=i, kind=OpKind.ALU, sources=(0,), dest=1)
                )
        assert_identical(ops, VCoreConfig(2, 128))

    def test_wide_code_footprint_misses_l1i(self):
        # Code addresses spread past the 16 KB L1I: fetch misses must
        # stall identically in both engines.
        ops = [
            MicroOp(
                op_id=i,
                kind=OpKind.ALU,
                sources=(0,),
                dest=1,
                code_address=(2 << 40) + (i % 1024) * 64,
            )
            for i in range(2048)
        ]
        assert_identical(ops, VCoreConfig(1, 64))


class TestGeneratedTraces:
    @pytest.mark.parametrize("slices", [1, 2, 4, 8])
    def test_default_phase_all_slice_counts(self, slices):
        trace = TraceGenerator(make_phase(), seed=0).generate(1500)
        assert_identical(trace, VCoreConfig(slices, 64 * slices))

    @settings(max_examples=20, deadline=None)
    @given(
        ilp=st.floats(min_value=0.5, max_value=8.0),
        mem_refs=st.floats(min_value=0.0, max_value=0.6),
        l1_miss=st.floats(min_value=0.0, max_value=1.0),
        branch_fraction=st.floats(min_value=0.0, max_value=0.4),
        mispredict=st.floats(min_value=0.0, max_value=0.5),
        hit_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.integers(min_value=50, max_value=800),
        slices=st.sampled_from([1, 2, 4, 8]),
        l2_kb=st.sampled_from([64, 128, 256, 512]),
    )
    def test_random_phase_random_config(
        self,
        ilp,
        mem_refs,
        l1_miss,
        branch_fraction,
        mispredict,
        hit_fraction,
        seed,
        count,
        slices,
        l2_kb,
    ):
        phase = make_phase(
            ilp=ilp,
            mem_refs_per_inst=mem_refs,
            l1_miss_rate=l1_miss,
            branch_fraction=branch_fraction,
            mispredict_rate=mispredict,
            working_set=((128, hit_fraction),),
        )
        with perf.fast_paths(False):
            trace = TraceGenerator(phase, seed=seed).generate(count)
        assert_identical(trace, VCoreConfig(slices, l2_kb))


def generator_state(generator):
    return (
        generator._pc,
        list(generator._hot_blocks),
        list(generator._sweep_position),
        dict(generator._branch_bias),
        dict(generator._branch_target),
        generator.rng.getstate(),
    )


class TestTraceGeneratorFastVsReference:
    def test_same_ops_same_rng_state(self):
        phase = make_phase()
        with perf.fast_paths(True):
            fast_gen = TraceGenerator(phase, seed=11)
            fast = fast_gen.generate(3000)
        with perf.fast_paths(False):
            ref_gen = TraceGenerator(phase, seed=11)
            reference = ref_gen.generate(3000)
        assert fast == reference
        assert generator_state(fast_gen) == generator_state(ref_gen)

    def test_second_batch_continues_identically(self):
        # The word-stream resync must leave the CPython RNG exactly
        # where the scalar loop would have, so a later batch (in either
        # mode) continues the same stream.
        phase = make_phase()
        with perf.fast_paths(True):
            fast_gen = TraceGenerator(phase, seed=5)
            first_fast = fast_gen.generate(700)
        ref_gen = TraceGenerator(phase, seed=5)
        with perf.fast_paths(False):
            first_ref = ref_gen.generate(700)
            second_ref = ref_gen.generate(700)
        assert first_fast == first_ref
        with perf.fast_paths(True):
            second_fast = fast_gen.generate(700)
        assert second_fast == second_ref

    def test_rng_usable_after_fast_generate(self):
        phase = make_phase()
        with perf.fast_paths(True):
            gen = TraceGenerator(phase, seed=9)
            gen.generate(500)
        mirror = random.Random()
        ref_gen = TraceGenerator(phase, seed=9)
        with perf.fast_paths(False):
            ref_gen.generate(500)
        mirror.setstate(ref_gen.rng.getstate())
        assert [gen.rng.random() for _ in range(8)] == [
            mirror.random() for _ in range(8)
        ]

    @settings(max_examples=15, deadline=None)
    @given(
        mem_refs=st.floats(min_value=0.0, max_value=0.6),
        l1_miss=st.floats(min_value=0.0, max_value=1.0),
        branch_fraction=st.floats(min_value=0.0, max_value=0.4),
        seed=st.integers(min_value=0, max_value=2**31),
        count=st.integers(min_value=1, max_value=2000),
    )
    def test_random_phase_sequences_match(
        self, mem_refs, l1_miss, branch_fraction, seed, count
    ):
        phase = make_phase(
            mem_refs_per_inst=mem_refs,
            l1_miss_rate=l1_miss,
            branch_fraction=branch_fraction,
        )
        with perf.fast_paths(True):
            fast_gen = TraceGenerator(phase, seed=seed)
            fast = fast_gen.generate(count)
        with perf.fast_paths(False):
            ref_gen = TraceGenerator(phase, seed=seed)
            reference = ref_gen.generate(count)
        assert fast == reference
        assert generator_state(fast_gen) == generator_state(ref_gen)


class TestRuntimeIterationRegression:
    """Section VI-A microbenchmark values, pinned bit-exactly.

    These are the numbers ``repro overheads`` prints; the event-driven
    engine must reproduce them with the switch in either position.
    """

    PINNED = {1: 2020.4, 2: 1269.4, 3: 1074.6}

    @pytest.mark.parametrize("slices,expected", sorted(PINNED.items()))
    def test_pinned_fast(self, slices, expected):
        with perf.fast_paths(True):
            assert SSim().runtime_iteration_cycles(slices=slices) == expected

    @pytest.mark.parametrize("slices,expected", sorted(PINNED.items()))
    def test_pinned_reference(self, slices, expected):
        with perf.fast_paths(False):
            assert SSim().runtime_iteration_cycles(slices=slices) == expected
