"""The struct-of-arrays trace encoding.

:class:`TraceArrays` must be a *lossless* re-encoding of a micro-op
trace — the batch tier's correctness argument starts from
``from_ops(ops).to_ops() == ops`` — and its derived columns (ordered
code-address dedup, producer rename) must agree between the numpy fast
paths and their scalar reference twins, with fast paths in either
position.  The Hypothesis strategy deliberately exercises every
``None``-sentinel field, empty source tuples and branch-only fields.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.sim.isa import MicroOp, OpKind
from repro.sim.soa import (
    KIND_ALU,
    KIND_BRANCH,
    KIND_LOAD,
    KIND_STORE,
    TraceArrays,
    ordered_unique,
)

REG = st.integers(min_value=0, max_value=63)
ADDR = st.integers(min_value=0, max_value=1 << 40)


@st.composite
def micro_op_fields(draw):
    """Field dict for one valid MicroOp (op_id assigned positionally)."""
    kind = draw(st.sampled_from(list(OpKind)))
    sources = tuple(draw(st.lists(REG, min_size=0, max_size=2)))
    dest = draw(st.one_of(st.none(), REG))
    address = draw(st.one_of(st.none(), ADDR))
    code_address = draw(st.one_of(st.none(), ADDR))
    mispredicted = False
    taken = None
    branch_target = None
    if kind in (OpKind.LOAD, OpKind.STORE):
        address = draw(ADDR)
    if kind is OpKind.LOAD:
        dest = draw(REG)
    if kind is OpKind.BRANCH:
        mispredicted = draw(st.booleans())
        taken = draw(st.one_of(st.none(), st.booleans()))
        branch_target = draw(st.one_of(st.none(), ADDR))
    return dict(
        kind=kind,
        sources=sources,
        dest=dest,
        address=address,
        mispredicted=mispredicted,
        code_address=code_address,
        taken=taken,
        branch_target=branch_target,
    )


TRACES = st.lists(micro_op_fields(), min_size=0, max_size=50).map(
    lambda fields: [
        MicroOp(op_id=i, **kwargs) for i, kwargs in enumerate(fields)
    ]
)


class TestRoundTrip:
    @given(ops=TRACES)
    @settings(max_examples=200, deadline=None)
    def test_from_ops_to_ops_is_identity(self, ops):
        assert TraceArrays.from_ops(ops).to_ops() == ops

    def test_none_sentinels_round_trip(self):
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU),
            MicroOp(
                op_id=1,
                kind=OpKind.BRANCH,
                mispredicted=True,
                taken=False,
                branch_target=4096,
                code_address=0,
            ),
            MicroOp(op_id=2, kind=OpKind.LOAD, dest=0, address=0),
        ]
        arrays = TraceArrays.from_ops(ops)
        assert arrays.to_ops() == ops
        # ``taken=False`` and ``address=0`` survive next to the -1
        # sentinel (the encoding never conflates falsy with missing).
        assert arrays.taken.tolist() == [-1, 0, -1]
        assert arrays.addresses.tolist() == [-1, -1, 0]
        assert arrays.code_addresses.tolist() == [-1, 0, -1]

    def test_empty_trace(self):
        arrays = TraceArrays.from_ops([])
        assert len(arrays) == 0
        assert arrays.source_width == 1
        assert arrays.to_ops() == []

    def test_kind_codes_are_stable(self):
        # sim/_batchcore.c hardcodes these codes; catch any reorder.
        assert (KIND_ALU, KIND_LOAD, KIND_STORE, KIND_BRANCH) == (
            0,
            1,
            2,
            3,
        )
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU),
            MicroOp(op_id=1, kind=OpKind.LOAD, dest=1, address=64),
            MicroOp(op_id=2, kind=OpKind.STORE, address=128),
            MicroOp(op_id=3, kind=OpKind.BRANCH),
        ]
        arrays = TraceArrays.from_ops(ops)
        assert arrays.kinds.tolist() == [0, 1, 2, 3]
        assert arrays.is_memory.tolist() == [0, 1, 1, 0]

    def test_arrays_are_sealed(self):
        arrays = TraceArrays.from_ops(
            [MicroOp(op_id=0, kind=OpKind.ALU, dest=1)]
        )
        with pytest.raises(ValueError):
            arrays.kinds[0] = 2
        with pytest.raises(ValueError):
            arrays.sources[0, 0] = 5

    def test_mismatched_column_shape_rejected(self):
        good = TraceArrays.from_ops(
            [MicroOp(op_id=0, kind=OpKind.ALU), MicroOp(op_id=1, kind=OpKind.ALU)]
        )
        with pytest.raises(ValueError):
            TraceArrays(
                kinds=good.kinds,
                sources=good.sources,
                dests=good.dests[:1],
                addresses=good.addresses,
                mispredicted=good.mispredicted,
                code_addresses=good.code_addresses,
                taken=good.taken,
                branch_targets=good.branch_targets,
            )


class TestOrderedUnique:
    def test_first_occurrence_order_and_sentinel_skip(self):
        column = np.array([192, 64, -1, 64, 0, 192, -1, 0], dtype=np.int64)
        assert ordered_unique(column).tolist() == [192, 64, 0]

    @given(
        values=st.lists(
            st.integers(min_value=-1, max_value=12), max_size=60
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_dedup(self, values):
        column = np.array(values, dtype=np.int64)
        seen, expected = set(), []
        for value in values:
            if value >= 0 and value not in seen:
                seen.add(value)
                expected.append(value)
        assert ordered_unique(column).tolist() == expected


class TestFastReferenceTwins:
    @pytest.fixture(autouse=True)
    def restore_fast_paths(self):
        yield
        perf.set_fast_paths(True)

    @given(ops=TRACES)
    @settings(max_examples=100, deadline=None)
    def test_unique_code_addresses_twins_agree(self, ops):
        arrays = TraceArrays.from_ops(ops)
        with perf.fast_paths(True):
            fast = arrays.unique_code_addresses()
        with perf.fast_paths(False):
            reference = arrays.unique_code_addresses()
        assert fast.tolist() == reference.tolist()

    @given(ops=TRACES)
    @settings(max_examples=150, deadline=None)
    def test_rename_producers_twins_agree(self, ops):
        arrays = TraceArrays.from_ops(ops)
        with perf.fast_paths(True):
            fast = arrays.rename_producers(2)
        with perf.fast_paths(False):
            reference = arrays.rename_producers(2)
        assert fast.tolist() == reference.tolist()
        assert fast.shape == (len(ops), 2)

    def test_rename_producers_known_chain(self):
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU, dest=3),
            MicroOp(op_id=1, kind=OpKind.ALU, sources=(3,), dest=3),
            MicroOp(op_id=2, kind=OpKind.ALU, sources=(3, 7), dest=7),
            # reg 7's producer (op 2) is found, reg 9 has none: the
            # single hit packs left.
            MicroOp(op_id=3, kind=OpKind.ALU, sources=(9, 7)),
            MicroOp(op_id=4, kind=OpKind.ALU, sources=(3, 3)),
        ]
        producers = TraceArrays.from_ops(ops).rename_producers(2)
        assert producers.tolist() == [
            [-1, -1],
            [0, -1],
            [1, -1],
            [2, -1],
            [1, 1],
        ]

    def test_rename_producers_overflow_raises(self):
        ops = [
            MicroOp(op_id=0, kind=OpKind.ALU, dest=1),
            MicroOp(op_id=1, kind=OpKind.ALU, dest=2),
            MicroOp(op_id=2, kind=OpKind.ALU, sources=(1, 2)),
        ]
        arrays = TraceArrays.from_ops(ops)
        for enabled in (True, False):
            with perf.fast_paths(enabled):
                with pytest.raises(ValueError):
                    arrays.rename_producers(1)
