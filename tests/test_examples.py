"""Every shipped example must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{script} produced no output"


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert "tier_agreement.py" in EXAMPLES
    assert len(EXAMPLES) >= 5
