"""Tenants and per-tenant accounting."""

import pytest

from repro.arch.vcore import VCoreConfig
from repro.cloud.tenant import Tenant, TenantAccount
from repro.workloads.apps import get_app


def make_tenant(**overrides):
    defaults = dict(
        tenant_id=0, app=get_app("hmmer"), qos_goal=1.0, policy="cash"
    )
    defaults.update(overrides)
    return Tenant(**defaults)


class TestTenant:
    def test_valid(self):
        tenant = make_tenant()
        assert tenant.policy == "cash"

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            make_tenant(tenant_id=-1)
        with pytest.raises(ValueError):
            make_tenant(qos_goal=0)
        with pytest.raises(ValueError):
            make_tenant(policy="greedy")
        with pytest.raises(ValueError):
            make_tenant(arrival_interval=-1)
        with pytest.raises(ValueError):
            make_tenant(arrival_interval=5, departure_interval=5)

    def test_departure_after_arrival_ok(self):
        tenant = make_tenant(arrival_interval=3, departure_interval=9)
        assert tenant.departure_interval == 9


class TestTenantAccount:
    def test_empty_account(self):
        account = TenantAccount(tenant_id=1)
        assert account.mean_cost_rate == 0.0
        assert account.violation_percent == 0.0
        assert account.mean_footprint_tiles == 0.0

    def test_aggregates(self):
        account = TenantAccount(tenant_id=1)
        account.intervals = 10
        account.violations = 2
        account.dollars_time = 0.5
        account.footprints = [VCoreConfig(2, 128), VCoreConfig(4, 256)]
        assert account.mean_cost_rate == pytest.approx(0.05)
        assert account.violation_percent == pytest.approx(20.0)
        assert account.mean_footprint_tiles == pytest.approx((4 + 8) / 2)
