"""Provider placement hysteresis and reservation-bounded menus."""

import pytest

from repro.arch.fabric import Fabric
from repro.arch.vcore import VCoreConfig
from repro.cloud import CloudProvider, Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app


def make_tenant(tenant_id, name="bzip", policy="cash"):
    app = get_app(name)
    return Tenant(
        tenant_id=tenant_id,
        app=app,
        qos_goal=qos_target_for(app),
        policy=policy,
    )


class TestPlacementHysteresis:
    def test_superset_allocation_hosts_in_place(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        provider.fabric.allocate(1, VCoreConfig(4, 512))
        # A smaller request is hosted without reallocation.
        assert provider._place(1, VCoreConfig(2, 128)) is True
        assert provider.fabric.allocation(1).config == VCoreConfig(4, 512)

    def test_growth_reallocates_to_componentwise_max(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        provider.fabric.allocate(1, VCoreConfig(4, 128))
        assert provider._place(1, VCoreConfig(2, 512)) is True
        held = provider.fabric.allocation(1).config
        assert held.slices == 4 and held.l2_kb == 512

    def test_sustained_small_footprint_shrinks(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        provider.fabric.allocate(1, VCoreConfig(8, 1024))
        small = VCoreConfig(1, 64)
        for _ in range(8):
            provider._place(1, small)
        # After the streak the holding is released down to the request.
        assert provider.fabric.allocation(1).config == small

    def test_brief_dip_does_not_shrink(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        big = VCoreConfig(8, 1024)
        provider.fabric.allocate(1, big)
        for _ in range(3):
            provider._place(1, VCoreConfig(1, 64))
        provider._place(1, big)  # footprint back up: streak resets
        for _ in range(3):
            provider._place(1, VCoreConfig(1, 64))
        assert provider.fabric.allocation(1).config == big

    def test_fresh_tenant_gets_allocated(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        assert provider._place(2, VCoreConfig(2, 128)) is True
        assert provider.fabric.allocation(2).config == VCoreConfig(2, 128)


class TestReservationBoundedMenu:
    def test_cash_menu_never_exceeds_reservation(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        tenant = make_tenant(0)
        decision = provider.admission.request(tenant)
        allocator = provider._build_allocator(tenant, decision.reservation)
        for config in allocator.runtime.configs:
            assert config.slices <= decision.reservation.slices
            assert config.l2_banks <= decision.reservation.l2_banks

    def test_cash_fleet_has_no_placement_failures(self):
        """With reservation-bounded menus and admission control, every
        placement fits by construction: no tenant ever waits."""
        tenants = [
            make_tenant(i, name)
            for i, name in enumerate(["bzip", "hmmer", "sjeng", "lib"])
        ]
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run(tenants, intervals=300)
        assert all(
            account.waiting_intervals == 0
            for account in report.accounts.values()
        )
