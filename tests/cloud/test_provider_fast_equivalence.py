"""Provider-loop fast paths are an optimization, never a model change.

``CloudProvider.run`` has FAST twins at three layers — the operating
point table cache, the fabric free-tile index, and the heap-based
arrival/departure queues.  Each test runs the same fixed-seed scenario
with fast paths on and off (or across worker counts) and asserts the
``ProviderReport`` is identical field for field.
"""

import pytest

from repro import perf
from repro.experiments.scenarios import provider_mix, run_provider_mix
from repro.experiments.stats import CellSpec, ProviderCellSpec, run_cells


@pytest.fixture(autouse=True)
def restore_fast_paths():
    yield
    perf.set_fast_paths(True)


def _run_departure_scenario(seed=7):
    """A mixed-policy run with staggered arrivals *and* departures, so
    both the arrival heap and the departure heap are exercised."""
    from repro.cloud import CloudProvider, Tenant
    from repro.experiments.harness import qos_target_for
    from repro.arch.fabric import Fabric
    from repro.workloads.apps import get_app

    names = ["bzip", "hmmer", "sjeng", "lib", "omnetpp", "ferret"]
    tenants = []
    for index, name in enumerate(names):
        app = get_app(name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy="cash" if index % 2 == 0 else "race",
                arrival_interval=index * 7,
                departure_interval=40 + index * 11 if index % 3 == 0 else None,
            )
        )
    provider = CloudProvider(
        fabric=Fabric(width=16, height=16), seed=seed, overcommit=1.5
    )
    return provider.run(tenants, intervals=120)


def _assert_reports_identical(fast, reference):
    assert fast.accounts == reference.accounts
    assert fast.mean_utilization == reference.mean_utilization
    assert fast.revenue_rate == reference.revenue_rate
    assert fast.defragmentations == reference.defragmentations
    assert fast == reference


class TestFastVsReference:
    @pytest.mark.parametrize("policy_mix", ["race", "cash", "half"])
    def test_provider_mix_identical(self, policy_mix):
        mix = provider_mix(policy_mix, tenants=8)
        with perf.fast_paths(True):
            fast = run_provider_mix(mix, intervals=80, seed=0)
        with perf.fast_paths(False):
            reference = run_provider_mix(mix, intervals=80, seed=0)
        _assert_reports_identical(fast, reference)

    def test_departures_and_overcommit_identical(self):
        with perf.fast_paths(True):
            fast = _run_departure_scenario()
        with perf.fast_paths(False):
            reference = _run_departure_scenario()
        _assert_reports_identical(fast, reference)

    def test_nondefault_seed_identical(self):
        mix = provider_mix("half", tenants=6)
        with perf.fast_paths(True):
            fast = run_provider_mix(mix, intervals=60, seed=3, overcommit=1.5)
        with perf.fast_paths(False):
            reference = run_provider_mix(
                mix, intervals=60, seed=3, overcommit=1.5
            )
        _assert_reports_identical(fast, reference)


class TestShardedVsSerial:
    SPECS = tuple(
        ProviderCellSpec(
            mix=provider_mix(policy_mix, tenants=6),
            intervals=50,
            seed=seed,
            overcommit=overcommit,
        )
        for policy_mix in ("race", "cash")
        for overcommit in (1.0, 1.5)
        for seed in (0,)
    )

    def test_jobs_invisible_in_reports(self):
        serial = run_cells(self.SPECS, jobs=1)
        sharded = run_cells(self.SPECS, jobs=4)
        assert len(serial) == len(self.SPECS)
        for left, right in zip(serial, sharded):
            _assert_reports_identical(left, right)

    def test_mixed_batch_dispatch(self):
        """Single-tenant and provider specs share one executor batch."""
        specs = [
            CellSpec(app_name="x264", kind="cash", intervals=40, seed=0),
            ProviderCellSpec(mix=provider_mix("cash", tenants=4), intervals=40),
        ]
        serial = run_cells(specs, jobs=1)
        sharded = run_cells(specs, jobs=2)
        assert serial[0].records == sharded[0].records
        assert serial[1] == sharded[1]
