"""Worst-case-footprint admission control."""

import pytest

from repro.arch.fabric import Fabric, TileKind
from repro.cloud.admission import AdmissionController
from repro.cloud.tenant import Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app


def make_tenant(tenant_id, name="hmmer", policy="cash"):
    app = get_app(name)
    return Tenant(
        tenant_id=tenant_id,
        app=app,
        qos_goal=qos_target_for(app),
        policy=policy,
    )


class TestAdmission:
    def test_reservation_is_worst_case_config(self):
        controller = AdmissionController(Fabric())
        tenant = make_tenant(0)
        reservation = controller.reservation_for(tenant)
        # The reservation must meet the tenant's QoS in every phase.
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        for phase in tenant.app.phases:
            assert DEFAULT_PERF_MODEL.ipc(phase, reservation) >= tenant.qos_goal

    def test_admits_until_capacity(self):
        controller = AdmissionController(Fabric(width=8, height=8))
        admitted = 0
        for tenant_id in range(64):
            decision = controller.request(make_tenant(tenant_id))
            if decision.admitted:
                admitted += 1
            else:
                break
        assert 0 < admitted < 64
        # The reserved totals never exceed capacity.
        assert controller.reserved(TileKind.SLICE) <= 32
        assert controller.reserved(TileKind.L2_BANK) <= 32

    def test_rejection_names_the_bottleneck(self):
        controller = AdmissionController(Fabric(width=6, height=6))
        last = None
        for tenant_id in range(40):
            last = controller.request(make_tenant(tenant_id, "mcf"))
            if not last.admitted:
                break
        assert last is not None and not last.admitted
        assert "insufficient" in last.reason

    def test_release_frees_reservation(self):
        controller = AdmissionController(Fabric(width=8, height=8))
        decision = controller.request(make_tenant(0))
        assert decision.admitted
        before = controller.reserved(TileKind.SLICE)
        controller.release(0)
        assert controller.reserved(TileKind.SLICE) < before

    def test_duplicate_admission_rejected(self):
        controller = AdmissionController(Fabric())
        controller.request(make_tenant(0))
        second = controller.request(make_tenant(0))
        assert not second.admitted
        assert second.reason == "already admitted"

    def test_overcommit_admits_more(self):
        strict = AdmissionController(Fabric(width=8, height=8), overcommit=1.0)
        loose = AdmissionController(Fabric(width=8, height=8), overcommit=2.0)

        def count(controller):
            admitted = 0
            for tenant_id in range(64):
                if controller.request(make_tenant(tenant_id)).admitted:
                    admitted += 1
            return admitted

        assert count(loose) > count(strict)

    def test_rejects_bad_overcommit(self):
        with pytest.raises(ValueError):
            AdmissionController(Fabric(), overcommit=0.5)

    def test_incremental_counters_match_decision_scan(self):
        """The O(1) admitted/reserved counters agree with full scans.

        ``CloudProvider.run`` now reports admissions from the
        controller's decision-time counter instead of re-scanning the
        decision log; this pins the counter to the scan it replaced,
        releases included.
        """
        controller = AdmissionController(
            Fabric(width=10, height=10), overcommit=1.5
        )
        for tenant_id in range(48):
            controller.request(make_tenant(tenant_id, "mcf"))
            if tenant_id % 5 == 0:
                controller.request(make_tenant(tenant_id))  # duplicate
            if tenant_id % 7 == 3:
                controller.release(tenant_id)

        scanned_admits = sum(
            1 for decision in controller.decisions if decision.admitted
        )
        scanned_duplicates = sum(
            1
            for decision in controller.decisions
            if decision.reason == "already admitted"
        )
        assert controller.admitted_count == scanned_admits
        assert controller.already_admitted_count == scanned_duplicates
        assert controller.reserved(TileKind.SLICE) == controller._scan_reserved(
            TileKind.SLICE
        )
        assert controller.reserved(
            TileKind.L2_BANK
        ) == controller._scan_reserved(TileKind.L2_BANK)
