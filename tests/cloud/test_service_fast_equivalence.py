"""Event-driven service == dense reference, bit for bit.

The acceptance claim for the service engine: at a fixed seed the
event-heap run (FAST on) and the dense per-interval reference (FAST
off) produce the identical ``ServiceReport`` — per-tenant accounting
included — across worker counts and with the sanitizer armed.  The
Hypothesis property drives randomized churn schedules (tenant counts,
activity, bursts, flash crowds, diurnal cycles, seeds) through both
engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import perf
from repro.analysis import sanitize
from repro.arch.fabric import Fabric
from repro.cloud.service import ServiceEngine
from repro.cloud.traffic import TrafficSpec, generate_traffic
from repro.experiments.stats import ServiceCellSpec, run_cells
from repro.sim.optables import cache_clear


@pytest.fixture(autouse=True)
def restore_modes():
    previous = sanitize.ENABLED
    yield
    perf.set_fast_paths(True)
    sanitize.set_enabled(previous)


def run_engine(spec, fast, overcommit=2.0):
    scenario = generate_traffic(spec)
    with perf.fast_paths(fast):
        engine = ServiceEngine(
            scenario, fabric=Fabric(16, 16), overcommit=overcommit
        )
        return engine.run()


def assert_reports_identical(fast, reference):
    assert fast.accounts == reference.accounts
    assert fast.tenant_intervals == reference.tenant_intervals
    assert fast.active_steps == reference.active_steps
    assert fast.decide_steps == reference.decide_steps
    assert (
        fast.utilization_tile_intervals
        == reference.utilization_tile_intervals
    )
    assert fast == reference


class TestFastVsReference:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_basic_churn_identical(self, seed):
        spec = TrafficSpec(
            tenants=12, horizon=160, seed=seed, activity=0.3, mean_burst=6.0
        )
        assert_reports_identical(
            run_engine(spec, fast=True), run_engine(spec, fast=False)
        )

    def test_flash_and_diurnal_identical(self):
        spec = TrafficSpec(
            tenants=16,
            horizon=200,
            seed=2,
            activity=0.2,
            mean_burst=5.0,
            diurnal_period=100,
            diurnal_amplitude=0.6,
            flash_crowds=2,
            flash_duration=20,
            flash_boost=5.0,
        )
        assert_reports_identical(
            run_engine(spec, fast=True), run_engine(spec, fast=False)
        )

    def test_overcommit_pressure_identical(self):
        spec = TrafficSpec(
            tenants=24, horizon=150, seed=5, activity=0.35, mean_burst=8.0
        )
        assert_reports_identical(
            run_engine(spec, fast=True, overcommit=3.0),
            run_engine(spec, fast=False, overcommit=3.0),
        )

    @settings(max_examples=12, deadline=None)
    @given(
        tenants=st.integers(min_value=2, max_value=14),
        horizon=st.integers(min_value=40, max_value=180),
        seed=st.integers(min_value=0, max_value=2**31),
        activity=st.floats(min_value=0.1, max_value=0.6),
        mean_burst=st.floats(min_value=2.0, max_value=10.0),
        flash_crowds=st.integers(min_value=0, max_value=2),
        diurnal=st.booleans(),
    )
    def test_random_churn_identical(
        self, tenants, horizon, seed, activity, mean_burst, flash_crowds, diurnal
    ):
        spec = TrafficSpec(
            tenants=tenants,
            horizon=horizon,
            seed=seed,
            activity=activity,
            mean_burst=mean_burst,
            lifetime_min=float(max(horizon // 4, 1)),
            diurnal_period=horizon // 2 if diurnal else 0,
            diurnal_amplitude=0.5,
            flash_crowds=flash_crowds,
            flash_duration=max(horizon // 10, 1),
            flash_boost=4.0,
        )
        assert_reports_identical(
            run_engine(spec, fast=True), run_engine(spec, fast=False)
        )


class TestShardedVsSerial:
    SPECS = tuple(
        ServiceCellSpec(
            traffic=TrafficSpec(
                tenants=tenants,
                horizon=100,
                seed=seed,
                activity=0.3,
                mean_burst=5.0,
            ),
            overcommit=2.0,
            fabric_width=16,
            fabric_height=16,
        )
        for tenants in (6, 10)
        for seed in (0, 1)
    )

    def test_jobs_invisible_in_reports(self):
        serial = run_cells(self.SPECS, jobs=1)
        sharded = run_cells(self.SPECS, jobs=4)
        assert len(serial) == len(self.SPECS)
        for left, right in zip(serial, sharded):
            assert_reports_identical(left, right)


class TestSanitized:
    def test_sanitized_run_identical_both_modes(self):
        spec = TrafficSpec(
            tenants=10, horizon=120, seed=4, activity=0.3, mean_burst=6.0
        )
        with sanitize.sanitized(False):
            cache_clear()
            plain_fast = run_engine(spec, fast=True)
            plain_dense = run_engine(spec, fast=False)
        with sanitize.sanitized(True):
            cache_clear()
            checked_fast = run_engine(spec, fast=True)
            checked_dense = run_engine(spec, fast=False)
        assert_reports_identical(plain_fast, plain_dense)
        assert_reports_identical(checked_fast, plain_fast)
        assert_reports_identical(checked_dense, plain_dense)
