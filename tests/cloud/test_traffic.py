"""Open-loop tenant traffic generation (``repro.cloud.traffic``).

The traffic model is a frozen, seeded spec: the same ``TrafficSpec``
must always expand to the same fleet, burst for burst.  These tests pin
determinism, spec validation, burst-schedule invariants, the
``is_active``/``next_active`` fast queries against a brute-force scan,
and the demand shaping (diurnal rate curve, flash crowds).
"""

import pytest

from repro.cloud.traffic import (
    TenantTraffic,
    TrafficSpec,
    generate_traffic,
)


def small_spec(**overrides):
    base = dict(tenants=24, horizon=300, seed=5, activity=0.25)
    base.update(overrides)
    return TrafficSpec(**base)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = TrafficSpec(tenants=4, horizon=100)
        assert spec.tenants == 4
        assert spec.seed == 0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("tenants", 0),
            ("horizon", 0),
            ("arrival_span", 1.5),
            ("arrival_span", -0.1),
            ("lifetime_shape", 0.0),
            ("lifetime_min", 0.0),
            ("activity", 0.0),
            ("activity", 1.5),
            ("mean_burst", 0.5),
            ("diurnal_period", -1),
            ("diurnal_amplitude", 2.0),
            ("flash_crowds", -2),
            ("flash_boost", 0.5),
            ("apps", ()),
            ("policies", ()),
            ("policies", ("cash", "bogus")),
        ],
    )
    def test_bad_field_rejected(self, field, value):
        with pytest.raises(ValueError):
            small_spec(**{field: value})

    def test_flash_duration_checked_when_crowds_requested(self):
        with pytest.raises(ValueError):
            small_spec(flash_crowds=1, flash_duration=0)

    def test_spec_is_hashable_and_frozen(self):
        spec = small_spec()
        assert hash(spec) == hash(small_spec())
        with pytest.raises(AttributeError):
            spec.tenants = 99


class TestDeterminism:
    def test_same_spec_same_fleet(self):
        left = generate_traffic(small_spec())
        right = generate_traffic(small_spec())
        assert left.flash_windows == right.flash_windows
        assert len(left.tenants) == len(right.tenants)
        for a, b in zip(left.tenants, right.tenants):
            assert a.tenant.tenant_id == b.tenant.tenant_id
            assert a.tenant.app.name == b.tenant.app.name
            assert a.tenant.policy == b.tenant.policy
            assert a.bursts == b.bursts

    def test_seed_changes_fleet(self):
        left = generate_traffic(small_spec(seed=5))
        right = generate_traffic(small_spec(seed=6))
        assert any(
            a.bursts != b.bursts
            for a, b in zip(left.tenants, right.tenants)
        )


class TestFleetShape:
    def test_tenant_ids_ascend_with_arrival(self):
        scenario = generate_traffic(small_spec())
        arrivals = [t.tenant.arrival_interval for t in scenario.tenants]
        assert arrivals == sorted(arrivals)
        ids = [t.tenant.tenant_id for t in scenario.tenants]
        assert ids == list(range(len(ids)))

    def test_bursts_inside_lifetime(self):
        scenario = generate_traffic(small_spec())
        horizon = scenario.spec.horizon
        for traffic in scenario.tenants:
            tenant = traffic.tenant
            end = (
                tenant.departure_interval
                if tenant.departure_interval is not None
                else horizon
            )
            assert traffic.bursts, "every tenant gets at least one burst"
            first_start, _ = traffic.bursts[0]
            assert first_start == tenant.arrival_interval
            previous_end = None
            for start, stop in traffic.bursts:
                assert start < stop <= end
                if previous_end is not None:
                    assert start > previous_end, "bursts never touch"
                previous_end = stop

    def test_policies_and_apps_cycle(self):
        spec = small_spec(policies=("cash", "race"), tenants=8)
        scenario = generate_traffic(spec)
        policies = [t.tenant.policy for t in scenario.tenants]
        assert policies == ["cash", "race"] * 4


class TestActivityQueries:
    def brute_force_active(self, traffic, interval):
        return any(
            start <= interval < stop for start, stop in traffic.bursts
        )

    def test_is_active_matches_brute_force(self):
        scenario = generate_traffic(small_spec())
        for traffic in scenario.tenants[:8]:
            for interval in range(scenario.spec.horizon):
                assert traffic.is_active(interval) == (
                    self.brute_force_active(traffic, interval)
                ), (traffic.tenant.tenant_id, interval)

    def test_next_active_matches_brute_force(self):
        scenario = generate_traffic(small_spec())
        horizon = scenario.spec.horizon
        for traffic in scenario.tenants[:8]:
            for interval in range(horizon):
                expected = next(
                    (
                        i
                        for i in range(interval, horizon)
                        if self.brute_force_active(traffic, i)
                    ),
                    None,
                )
                assert traffic.next_active(interval) == expected

    def test_active_intervals_counts_bursts(self):
        scenario = generate_traffic(small_spec())
        for traffic in scenario.tenants:
            total = sum(stop - start for start, stop in traffic.bursts)
            assert traffic.active_intervals == total


class TestDemandShaping:
    def test_flash_crowds_raise_activity_inside_windows(self):
        calm = generate_traffic(small_spec(flash_crowds=0))
        spec = small_spec(flash_crowds=2, flash_duration=40, flash_boost=8.0)
        flashed = generate_traffic(spec)
        assert len(flashed.flash_windows) == 2
        for start, stop in flashed.flash_windows:
            assert 0 <= start < stop <= spec.horizon

        def activity_in_windows(scenario, windows):
            hits = span = 0
            for begin, end in windows:
                span += (end - begin) * len(scenario.tenants)
                for traffic in scenario.tenants:
                    hits += sum(
                        1
                        for i in range(begin, end)
                        if traffic.is_active(i)
                    )
            return hits / span

        windows = flashed.flash_windows
        assert activity_in_windows(flashed, windows) > activity_in_windows(
            calm, windows
        )

    def test_diurnal_cycle_modulates_gaps(self):
        spec = small_spec(
            tenants=48,
            horizon=400,
            diurnal_period=400,
            diurnal_amplitude=0.6,
            # Everyone arrives immediately and lives past the horizon,
            # so the only first-half/second-half asymmetry is diurnal.
            arrival_span=0.05,
            lifetime_min=500.0,
        )
        scenario = generate_traffic(spec)
        # Demand peaks in the first half-period and troughs in the
        # second; aggregate activity must follow.
        half = spec.horizon // 2

        def occupancy(begin, end):
            return sum(
                sum(1 for i in range(begin, end) if t.is_active(i))
                for t in scenario.tenants
            )

        assert occupancy(0, half) > occupancy(half, spec.horizon)
