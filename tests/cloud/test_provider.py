"""The multi-tenant provider simulation."""

import pytest

from repro.arch.fabric import Fabric
from repro.cloud import CloudProvider, Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app


def make_tenant(tenant_id, name="hmmer", policy="cash", **kwargs):
    app = get_app(name)
    return Tenant(
        tenant_id=tenant_id,
        app=app,
        qos_goal=qos_target_for(app),
        policy=policy,
        **kwargs,
    )


class TestProviderBasics:
    def test_single_cash_tenant_meets_qos(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run([make_tenant(0, "bzip")], intervals=500)
        account = report.accounts[0]
        assert account.intervals == 500
        # Cold start included, so allow generous but bounded violations.
        assert account.violation_percent < 15.0
        assert account.mean_cost_rate > 0

    def test_race_tenant_never_violates(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run(
            [make_tenant(0, "sjeng", policy="race")], intervals=300
        )
        assert report.accounts[0].violation_percent == 0.0

    def test_cash_tenant_cheaper_than_race(self):
        race_report = CloudProvider(fabric=Fabric(width=16, height=16)).run(
            [make_tenant(0, "bzip", policy="race")], intervals=500
        )
        cash_report = CloudProvider(fabric=Fabric(width=16, height=16)).run(
            [make_tenant(0, "bzip", policy="cash")], intervals=500
        )
        assert (
            cash_report.accounts[0].mean_cost_rate
            < race_report.accounts[0].mean_cost_rate
        )

    def test_arrivals_and_departures(self):
        tenants = [
            make_tenant(0, arrival_interval=0, departure_interval=50),
            make_tenant(1, arrival_interval=20),
        ]
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run(tenants, intervals=100)
        assert report.accounts[0].intervals == 50
        assert report.accounts[1].intervals == 80

    def test_rejected_tenants_counted(self):
        # A tiny fabric cannot hold many worst-case reservations.
        tenants = [make_tenant(i, "mcf") for i in range(6)]
        provider = CloudProvider(fabric=Fabric(width=6, height=6))
        report = provider.run(tenants, intervals=30)
        assert report.rejected >= 1
        assert report.admitted + report.rejected == 6

    def test_admitted_matches_decision_log(self):
        """The incremental admitted counter equals a decision-log scan."""
        tenants = [make_tenant(i, "mcf") for i in range(8)]
        provider = CloudProvider(fabric=Fabric(width=8, height=8))
        report = provider.run(tenants, intervals=30)
        scanned = sum(
            1
            for decision in provider.admission.decisions
            if decision.admitted
        )
        assert report.admitted == scanned

    def test_rejects_bad_intervals(self):
        with pytest.raises(ValueError):
            CloudProvider().run([], intervals=0)


class TestProviderCapacity:
    def test_fabric_allocations_stay_disjoint(self):
        tenants = [make_tenant(i, name) for i, name in
                   enumerate(["hmmer", "sjeng", "bzip", "lib"])]
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        provider.run(tenants, intervals=150)
        owned = {}
        for vcore_id, allocation in provider.fabric.allocations.items():
            for position in allocation.positions:
                assert position not in owned
                owned[position] = vcore_id

    def test_utilization_tracked(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run([make_tenant(0)], intervals=60)
        assert 0.0 < report.mean_utilization < 1.0

    def test_cash_frees_capacity_vs_race(self):
        """The provider-level payoff: CASH tenants' mean footprint is
        far below their worst-case reservation."""
        fabric = Fabric(width=16, height=16)
        provider = CloudProvider(fabric=fabric)
        tenant = make_tenant(0, "bzip", policy="cash")
        report = provider.run([tenant], intervals=500)
        reservation = provider.admission.reservation_for(tenant)
        assert (
            report.accounts[0].mean_footprint_tiles < reservation.tiles
        )

    def test_revenue_rate_positive(self):
        provider = CloudProvider(fabric=Fabric(width=16, height=16))
        report = provider.run([make_tenant(0)], intervals=60)
        assert report.revenue_rate > 0
