"""The event-driven provider service (``repro.cloud.service``).

Covers the engine's behavioral surface: report accounting sanity,
convergence hibernation (decide steps < active steps), idle-tenant
parking, the streaming metrics sink, incremental ``run(until)``
segments, mode locking, and the schema-versioned checksummed
checkpoint/restore format (tier-1: a round-trip must continue
bit-identically to the uninterrupted run).
"""

import pickle

import pytest

from repro import perf
from repro.arch.fabric import Fabric
from repro.cloud.service import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    MetricsSink,
    ServiceEngine,
)
from repro.cloud.traffic import TrafficSpec, generate_traffic


@pytest.fixture(autouse=True)
def restore_fast_paths():
    yield
    perf.set_fast_paths(True)


def small_scenario(tenants=10, horizon=160, seed=3, **overrides):
    base = dict(
        tenants=tenants,
        horizon=horizon,
        seed=seed,
        activity=0.3,
        mean_burst=6.0,
        lifetime_min=60.0,
    )
    base.update(overrides)
    return generate_traffic(TrafficSpec(**base))


def build_engine(scenario=None, metrics=None, **overrides):
    if scenario is None:
        scenario = small_scenario()
    kwargs = dict(fabric=Fabric(16, 16), overcommit=2.0, metrics=metrics)
    kwargs.update(overrides)
    return ServiceEngine(scenario, **kwargs)


class TestReportAccounting:
    def test_report_sanity(self):
        engine = build_engine()
        report = engine.run()
        assert report.intervals == engine.scenario.spec.horizon
        assert report.admitted > 0
        assert report.admitted + report.rejected <= len(
            engine.scenario.tenants
        )
        assert len(report.accounts) == report.admitted
        assert 0 < report.active_steps <= report.tenant_intervals
        assert 0.0 <= report.mean_utilization <= 1.0
        assert report.revenue_rate > 0.0
        total_active = sum(
            account.active_intervals for account in report.accounts.values()
        )
        assert total_active == report.active_steps

    def test_hibernation_reduces_decides(self):
        engine = build_engine(converged_after=4, reprobe_every=24)
        report = engine.run()
        assert 0 < report.decide_steps < report.active_steps

    def test_hibernation_disabled_when_converged_after_zero(self):
        engine = build_engine(converged_after=0)
        report = engine.run()
        assert report.decide_steps == report.active_steps

    def test_parking_releases_idle_tenants(self):
        engine = build_engine()
        engine.run()
        # After the horizon every still-resident tenant whose traffic
        # has gone quiet must hold no tiles.
        for tenant_id, resident in engine._residents.items():
            if not resident.traffic.is_active(engine.scenario.spec.horizon):
                assert not engine.fabric.has_allocation(tenant_id)


class TestRunSegments:
    def test_run_until_is_resumable(self):
        straight = build_engine().run()
        engine = build_engine()
        engine.run(until=50)
        engine.run(until=110)
        segmented = engine.run()
        assert segmented == straight

    def test_until_must_advance(self):
        engine = build_engine()
        engine.run(until=50)
        with pytest.raises(ValueError):
            engine.run(until=40)

    def test_until_beyond_horizon_rejected(self):
        engine = build_engine()
        with pytest.raises(ValueError):
            engine.run(until=engine.scenario.spec.horizon + 1)

    def test_mode_is_locked_after_first_run(self):
        engine = build_engine()
        with perf.fast_paths(True):
            engine.run(until=40)
        with perf.fast_paths(False):
            with pytest.raises(RuntimeError):
                engine.run(until=80)


class TestMetricsSink:
    def test_ring_is_bounded_and_counts_everything(self):
        sink = MetricsSink(capacity=16)
        engine = build_engine(metrics=sink)
        engine.run()
        assert len(sink.records) == 16
        assert sink.emitted > 16

    def test_jsonl_stream_matches_emitted(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        sink = MetricsSink(capacity=8, jsonl_path=str(path))
        engine = build_engine(metrics=sink)
        engine.run()
        lines = path.read_text().splitlines()
        assert len(lines) == sink.emitted

    def test_event_mode_emits_stretch_records(self):
        sink = MetricsSink(capacity=4096)
        engine = build_engine(metrics=sink)
        with perf.fast_paths(True):
            engine.run()
        kinds = {record["kind"] for record in sink.records}
        assert kinds == {"interval", "stretch"}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSink(capacity=0)


class TestCheckpoint:
    @pytest.mark.parametrize("fast", [True, False])
    def test_round_trip_continues_bit_identically(self, fast):
        with perf.fast_paths(fast):
            straight = build_engine().run()
            engine = build_engine()
            engine.run(until=60)
            blob = engine.checkpoint()
            resumed = ServiceEngine.restore(blob).run()
        assert resumed == straight

    def test_restore_does_not_disturb_original(self):
        with perf.fast_paths(True):
            engine = build_engine()
            engine.run(until=60)
            blob = engine.checkpoint()
            ServiceEngine.restore(blob)
            continued = engine.run()
            straight = build_engine().run()
        assert continued == straight

    def test_save_and_load_paths(self, tmp_path):
        path = tmp_path / "svc.ckpt"
        engine = build_engine()
        engine.run(until=40)
        engine.save_checkpoint(path)
        straight = build_engine().run()
        assert ServiceEngine.load_checkpoint(path).run() == straight

    def test_bad_magic_rejected(self):
        engine = build_engine()
        blob = engine.checkpoint()
        with pytest.raises(CheckpointError, match="magic"):
            ServiceEngine.restore(b"NOTMAGIC" + blob[8:])

    def test_corruption_rejected(self):
        engine = build_engine()
        blob = bytearray(engine.checkpoint())
        blob[-1] ^= 0xFF
        with pytest.raises(CheckpointError, match="checksum"):
            ServiceEngine.restore(bytes(blob))

    def test_truncation_rejected(self):
        engine = build_engine()
        blob = engine.checkpoint()
        with pytest.raises(CheckpointError):
            ServiceEngine.restore(blob[:20])

    def test_wrong_schema_rejected(self):
        import hashlib

        from repro.cloud import service

        payload = pickle.dumps(
            {"schema": CHECKPOINT_SCHEMA + 1, "engine": None},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        blob = (
            service._CHECKPOINT_MAGIC
            + hashlib.sha256(payload).digest()
            + payload
        )
        with pytest.raises(CheckpointError, match="schema"):
            ServiceEngine.restore(blob)
