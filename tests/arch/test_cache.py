"""L2 banks, composed caches and the distance-delay model (Table II)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.cache import (
    CacheBank,
    CacheGeometry,
    ComposedL2,
    l2_hit_delay,
    mean_bank_distance,
    mean_l2_hit_delay,
)
from repro.arch.params import DEFAULT_CACHE_PARAMS


class TestL2HitDelay:
    def test_formula_distance_times_two_plus_four(self):
        for distance in range(10):
            assert l2_hit_delay(distance) == distance * 2 + 4

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            l2_hit_delay(-1)

    @given(d1=st.integers(0, 30), d2=st.integers(0, 30))
    def test_monotone_in_distance(self, d1, d2):
        if d1 < d2:
            assert l2_hit_delay(d1) < l2_hit_delay(d2)


class TestMeanBankDistance:
    def test_grows_with_banks(self):
        distances = [mean_bank_distance(b) for b in (1, 4, 16, 64, 128)]
        assert distances == sorted(distances)
        assert distances[0] < distances[-1]

    def test_grows_with_slices_too(self):
        assert mean_bank_distance(4, 8) > mean_bank_distance(4, 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mean_bank_distance(0)
        with pytest.raises(ValueError):
            mean_bank_distance(4, 0)

    def test_mean_hit_delay_uses_formula(self):
        distance = mean_bank_distance(16, 2)
        assert mean_l2_hit_delay(16, 2) == pytest.approx(distance * 2 + 4)


class TestCacheGeometry:
    def test_total_kb(self):
        assert CacheGeometry(num_banks=8, num_slices=2).total_kb == 512

    def test_worst_case_flush_is_8000_cycles(self):
        # Section VI-A quotes 64KB / 8B = 8000 cycles (decimal KB);
        # binary-exact arithmetic gives 65536 / 8 = 8192.
        geometry = CacheGeometry(num_banks=1, num_slices=1)
        assert geometry.worst_case_flush_cycles() == 8192

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheGeometry(num_banks=0, num_slices=1)


def make_bank(**kwargs) -> CacheBank:
    return CacheBank(DEFAULT_CACHE_PARAMS.l2_bank, **kwargs)


class TestCacheBank:
    def test_miss_then_hit(self):
        bank = make_bank()
        assert bank.access(0x1000) is False
        assert bank.access(0x1000) is True
        assert bank.hits == 1 and bank.misses == 1

    def test_distinct_blocks_miss_independently(self):
        bank = make_bank()
        assert bank.access(0x0) is False
        assert bank.access(0x40) is False  # next block

    def test_same_block_different_bytes_hit(self):
        bank = make_bank()
        bank.access(0x100)
        assert bank.access(0x13F) is True  # same 64B block

    def test_write_marks_dirty(self):
        bank = make_bank()
        bank.access(0x2000, is_write=True)
        assert bank.dirty_lines() == 1

    def test_read_does_not_mark_dirty(self):
        bank = make_bank()
        bank.access(0x2000, is_write=False)
        assert bank.dirty_lines() == 0

    def test_lru_eviction_within_set(self):
        bank = make_bank()
        level = DEFAULT_CACHE_PARAMS.l2_bank
        stride = level.num_sets * level.block_bytes  # same set, new tag
        ways = level.associativity
        for i in range(ways + 1):
            bank.access(i * stride)
        # The least recently used line (i=0) was evicted.
        assert bank.contains(0) is False
        assert bank.contains(ways * stride) is True

    def test_lru_respects_recency(self):
        bank = make_bank()
        level = DEFAULT_CACHE_PARAMS.l2_bank
        stride = level.num_sets * level.block_bytes
        ways = level.associativity
        for i in range(ways):
            bank.access(i * stride)
        bank.access(0)  # refresh line 0
        bank.access(ways * stride)  # evicts line 1, not line 0
        assert bank.contains(0) is True
        assert bank.contains(stride) is False

    def test_dirty_eviction_counts_writeback(self):
        bank = make_bank()
        level = DEFAULT_CACHE_PARAMS.l2_bank
        stride = level.num_sets * level.block_bytes
        bank.access(0, is_write=True)
        for i in range(1, level.associativity + 1):
            bank.access(i * stride)
        assert bank.writebacks == 1

    def test_flush_clears_and_counts(self):
        bank = make_bank()
        for i in range(10):
            bank.access(i * 64, is_write=True)
        dirty, cycles = bank.flush()
        assert dirty == 10
        assert cycles == 10 * 64 // 8  # blocks over a 64-bit network
        assert bank.resident_lines() == 0

    def test_flush_worst_case_8000_cycles(self):
        bank = make_bank()
        level = DEFAULT_CACHE_PARAMS.l2_bank
        # Touch (and dirty) every block in the bank.
        for block in range(level.num_blocks):
            bank.access(block * level.block_bytes, is_write=True)
        assert bank.dirty_lines() == level.num_blocks
        _, cycles = bank.flush()
        assert cycles == 8192  # paper rounds this to 8000

    def test_clean_flush_is_free(self):
        bank = make_bank()
        bank.access(0x40)
        dirty, cycles = bank.flush()
        assert dirty == 0 and cycles == 0

    def test_hit_delay_uses_distance(self):
        assert make_bank(distance=0).hit_delay == 4
        assert make_bank(distance=5).hit_delay == 14

    def test_rejects_negative_distance_and_address(self):
        with pytest.raises(ValueError):
            make_bank(distance=-1)
        bank = make_bank()
        with pytest.raises(ValueError):
            bank.access(-64)

    def test_miss_rate(self):
        bank = make_bank()
        bank.access(0)
        bank.access(0)
        assert bank.miss_rate == pytest.approx(0.5)

    @given(addresses=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    def test_second_pass_hits_if_fits(self, addresses):
        """Any footprint smaller than the bank fully hits on re-access."""
        level = DEFAULT_CACHE_PARAMS.l2_bank
        blocks = {a // level.block_bytes for a in addresses}
        # Keep the footprint small enough to avoid set conflicts.
        if len(blocks) > level.associativity:
            return
        bank = make_bank()
        for a in addresses:
            bank.access(a)
        for a in addresses:
            assert bank.contains(a)


class TestComposedL2:
    def _banks(self, n):
        return [make_bank(bank_id=i, distance=i) for i in range(n)]

    def test_requires_banks(self):
        with pytest.raises(ValueError):
            ComposedL2([])

    def test_total_kb(self):
        assert ComposedL2(self._banks(4)).total_kb == 256

    def test_addresses_hash_across_banks(self):
        l2 = ComposedL2(self._banks(4))
        used = {l2.bank_for(block * 64).bank_id for block in range(16)}
        assert used == {0, 1, 2, 3}

    def test_access_returns_bank_delay(self):
        l2 = ComposedL2(self._banks(2))
        hit, delay = l2.access(0)
        assert hit is False
        assert delay == l2.bank_for(0).hit_delay

    def test_remove_bank_flushes_dirty(self):
        l2 = ComposedL2(self._banks(2))
        # Dirty a line in bank 1 (block 1 hashes to bank 1).
        l2.access(64, is_write=True)
        assert l2.bank_for(64).bank_id == 1
        dirty, cycles = l2.remove_bank(1)
        assert dirty == 1
        assert cycles == 64 // 8
        assert l2.num_banks == 1

    def test_cannot_remove_last_bank(self):
        l2 = ComposedL2(self._banks(1))
        with pytest.raises(ValueError):
            l2.remove_bank(0)

    def test_remove_unknown_bank(self):
        l2 = ComposedL2(self._banks(2))
        with pytest.raises(KeyError):
            l2.remove_bank(99)

    def test_add_bank(self):
        l2 = ComposedL2(self._banks(2))
        l2.add_bank(make_bank(bank_id=7))
        assert l2.num_banks == 3

    def test_add_duplicate_bank_id(self):
        l2 = ComposedL2(self._banks(2))
        with pytest.raises(ValueError):
            l2.add_bank(make_bank(bank_id=1))

    def test_stats_aggregate(self):
        l2 = ComposedL2(self._banks(2))
        l2.access(0)
        l2.access(0)
        stats = l2.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
