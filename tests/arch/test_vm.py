"""VM grouping and the ILP/TLP trade-off (Section III-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.vcore import VCoreConfig
from repro.arch.vm import (
    VirtualMachine,
    best_vm_shape,
    enumerate_vm_shapes,
    uniform_vm,
    vm_throughput,
)
from repro.workloads.phase import Phase


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=3.0,
        mem_refs_per_inst=0.25,
        l1_miss_rate=0.05,
        working_set=((128, 0.9),),
        comm_penalty=0.05,
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestVirtualMachine:
    def test_requires_vcores(self):
        with pytest.raises(ValueError):
            VirtualMachine(vcores=())

    def test_totals(self):
        vm = uniform_vm(3, VCoreConfig(2, 128))
        assert vm.num_vcores == 3
        assert vm.total_slices == 6
        assert vm.total_tiles == 12

    def test_cost_is_sum_of_vcores(self):
        config = VCoreConfig(2, 128)
        vm = uniform_vm(4, config)
        assert vm.cost_rate() == pytest.approx(4 * config.cost_rate())

    def test_str(self):
        assert str(uniform_vm(2, VCoreConfig(1, 64))) == "2x 1S/64KB"
        mixed = VirtualMachine(vcores=(VCoreConfig(1, 64), VCoreConfig(2, 128)))
        assert "+" in str(mixed)

    def test_uniform_vm_validation(self):
        with pytest.raises(ValueError):
            uniform_vm(0, VCoreConfig(1, 64))


class TestVmThroughput:
    def test_single_vcore_equals_ipc(self):
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        phase = make_phase()
        config = VCoreConfig(2, 128)
        vm = uniform_vm(1, config)
        assert vm_throughput(phase, vm, 0.9) == pytest.approx(
            DEFAULT_PERF_MODEL.ipc(phase, config)
        )

    def test_fully_parallel_work_sums_cores(self):
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        phase = make_phase()
        config = VCoreConfig(2, 128)
        vm = uniform_vm(4, config)
        assert vm_throughput(phase, vm, 1.0) == pytest.approx(
            4 * DEFAULT_PERF_MODEL.ipc(phase, config)
        )

    def test_fully_serial_work_sees_one_core(self):
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        phase = make_phase()
        config = VCoreConfig(2, 128)
        vm = uniform_vm(4, config)
        assert vm_throughput(phase, vm, 0.0) == pytest.approx(
            DEFAULT_PERF_MODEL.ipc(phase, config)
        )

    @given(p=st.floats(min_value=0.0, max_value=1.0))
    def test_amdahl_bound(self, p):
        """Throughput never exceeds the all-parallel sum nor drops
        below the one-core rate."""
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        phase = make_phase()
        config = VCoreConfig(1, 64)
        vm = uniform_vm(4, config)
        single = DEFAULT_PERF_MODEL.ipc(phase, config)
        value = vm_throughput(phase, vm, p)
        assert single - 1e-9 <= value <= 4 * single + 1e-9

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            vm_throughput(make_phase(), uniform_vm(1, VCoreConfig(1, 64)), 1.5)


class TestShapeSearch:
    def test_enumerate_respects_budget(self):
        for vm in enumerate_vm_shapes(tile_budget=16):
            assert vm.total_tiles <= 16

    def test_enumerate_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            enumerate_vm_shapes(0)

    def test_budget_too_small_for_any_config(self):
        with pytest.raises(ValueError):
            best_vm_shape(make_phase(), 0.5, tile_budget=1)

    def test_serial_phase_prefers_one_wide_core(self):
        point = best_vm_shape(make_phase(ilp=5.0), 0.0, tile_budget=24)
        assert point.vm.num_vcores == 1

    def test_parallel_phase_prefers_many_cores(self):
        point = best_vm_shape(make_phase(ilp=2.0), 0.99, tile_budget=24)
        assert point.vm.num_vcores >= 2

    def test_tradeoff_shifts_with_parallel_fraction(self):
        """The paper's ILP-vs-TLP claim: as the parallel fraction
        grows, the optimal shape moves from few wide cores to many
        narrow ones — on the *same* tiles."""
        phase = make_phase(ilp=4.0)
        counts = [
            best_vm_shape(phase, p, tile_budget=24).vm.num_vcores
            for p in (0.0, 0.5, 0.9, 0.99)
        ]
        assert counts[0] == 1
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_efficiency_objective(self):
        point = best_vm_shape(
            make_phase(), 0.9, tile_budget=24, objective="efficiency"
        )
        throughput_point = best_vm_shape(
            make_phase(), 0.9, tile_budget=24, objective="throughput"
        )
        assert point.efficiency >= throughput_point.efficiency

    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            best_vm_shape(make_phase(), 0.5, tile_budget=8, objective="speed")
