"""Reconfiguration commands and cycle costs (Section VI-A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.reconfig import (
    ReconfigCommand,
    ReconfigCostModel,
    ReconfigEngine,
    ReconfigKind,
    DEFAULT_RECONFIG_COSTS,
)
from repro.arch.registers import DistributedRegisterFile
from repro.arch.vcore import VCoreConfig

CONFIGS = st.builds(
    VCoreConfig,
    slices=st.integers(1, 8),
    l2_kb=st.sampled_from([64 * 2 ** i for i in range(8)]),
)


class TestCostModel:
    def test_slice_expansion_about_15_cycles(self):
        # "Slice expansion is fast — requiring only a pipeline flush —
        # approximately 15 cycles."
        assert DEFAULT_RECONFIG_COSTS.slice_expand_cycles() == 15

    def test_slice_contraction_at_most_64_more(self):
        expand = DEFAULT_RECONFIG_COSTS.slice_expand_cycles()
        shrink = DEFAULT_RECONFIG_COSTS.slice_shrink_cycles()
        assert shrink - expand <= 64
        assert shrink - expand == 64  # worst case: full local RF flush

    def test_shrink_with_few_flushed_values(self):
        cost = DEFAULT_RECONFIG_COSTS.slice_shrink_cycles(flushed_values=5)
        assert cost == DEFAULT_RECONFIG_COSTS.pipeline_flush_cycles() + 5

    def test_register_flush_bounded_by_local_registers(self):
        assert DEFAULT_RECONFIG_COSTS.register_flush_cycles(1000) == 64

    def test_l2_flush_worst_case_8000(self):
        # 64 KB bank over a 64-bit network; the paper rounds
        # 64KB/8B to 8000 cycles, binary-exact is 8192.
        assert DEFAULT_RECONFIG_COSTS.l2_bank_flush_cycles() == 8192

    def test_l2_flush_scales_with_dirty_fraction(self):
        model = ReconfigCostModel(dirty_fraction=0.25)
        assert model.l2_bank_flush_cycles() == 2048

    def test_l2_expand_is_just_a_pipeline_flush(self):
        assert (
            DEFAULT_RECONFIG_COSTS.l2_expand_cycles()
            == DEFAULT_RECONFIG_COSTS.pipeline_flush_cycles()
        )

    def test_rejects_bad_dirty_fraction(self):
        with pytest.raises(ValueError):
            ReconfigCostModel(dirty_fraction=1.5)

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            DEFAULT_RECONFIG_COSTS.slice_expand_cycles(0)
        with pytest.raises(ValueError):
            DEFAULT_RECONFIG_COSTS.l2_shrink_cycles(0)
        with pytest.raises(ValueError):
            DEFAULT_RECONFIG_COSTS.register_flush_cycles(-1)


class TestTransitionCycles:
    def test_no_change_is_free(self):
        config = VCoreConfig(2, 128)
        assert DEFAULT_RECONFIG_COSTS.transition_cycles(config, config) == 0

    def test_pure_expansion(self):
        cost = DEFAULT_RECONFIG_COSTS.transition_cycles(
            VCoreConfig(1, 64), VCoreConfig(4, 64)
        )
        assert cost == 15

    def test_l2_shrink_dominates(self):
        cost = DEFAULT_RECONFIG_COSTS.transition_cycles(
            VCoreConfig(1, 8192), VCoreConfig(1, 64)
        )
        assert cost == 8192

    def test_concurrent_slice_and_l2(self):
        # Slice shrink (79) overlaps with L2 expand (15): max = 79.
        cost = DEFAULT_RECONFIG_COSTS.transition_cycles(
            VCoreConfig(8, 64), VCoreConfig(1, 128)
        )
        assert cost == 79

    @given(old=CONFIGS, new=CONFIGS)
    def test_cost_is_nonnegative_and_bounded(self, old, new):
        cost = DEFAULT_RECONFIG_COSTS.transition_cycles(old, new)
        assert 0 <= cost <= 8192


class TestCommands:
    def test_command_validation(self):
        with pytest.raises(ValueError):
            ReconfigCommand(ReconfigKind.SLICE_EXPAND, 0)

    def test_commands_for_growth(self):
        commands = ReconfigEngine.commands_for(
            VCoreConfig(1, 64), VCoreConfig(4, 256)
        )
        kinds = {c.kind: c.count for c in commands}
        assert kinds == {
            ReconfigKind.SLICE_EXPAND: 3,
            ReconfigKind.L2_EXPAND: 3,
        }

    def test_commands_for_mixed_change(self):
        commands = ReconfigEngine.commands_for(
            VCoreConfig(4, 64), VCoreConfig(2, 512)
        )
        kinds = {c.kind: c.count for c in commands}
        assert kinds == {
            ReconfigKind.SLICE_SHRINK: 2,
            ReconfigKind.L2_EXPAND: 7,
        }

    def test_no_commands_when_unchanged(self):
        assert ReconfigEngine.commands_for(
            VCoreConfig(2, 128), VCoreConfig(2, 128)
        ) == []


class TestEngine:
    def test_apply_updates_state_and_totals(self):
        engine = ReconfigEngine(initial=VCoreConfig(1, 64))
        result = engine.apply(VCoreConfig(2, 128))
        assert engine.current == VCoreConfig(2, 128)
        assert engine.total_overhead_cycles == result.overhead_cycles
        assert len(engine.history) == 1

    def test_overheads_accumulate(self):
        engine = ReconfigEngine(initial=VCoreConfig(1, 64))
        engine.apply(VCoreConfig(4, 512))
        engine.apply(VCoreConfig(1, 64))
        assert engine.total_overhead_cycles > 15

    def test_register_file_shrinks_with_engine(self):
        registers = DistributedRegisterFile(slice_ids=range(4))
        for gr in range(12):
            registers.write(gr % 4, gr, gr + 1)
        engine = ReconfigEngine(
            initial=VCoreConfig(4, 256), register_file=registers
        )
        result = engine.apply(VCoreConfig(2, 256))
        assert result.flush is not None
        assert registers.num_slices == 2
        # Architectural state preserved.
        assert registers.architectural_state() == {
            gr: gr + 1 for gr in range(12)
        }

    def test_register_file_expands_with_engine(self):
        registers = DistributedRegisterFile(slice_ids=range(2))
        engine = ReconfigEngine(
            initial=VCoreConfig(2, 64), register_file=registers
        )
        engine.apply(VCoreConfig(5, 64))
        assert registers.num_slices == 5

    def test_measured_flush_cost_below_worst_case(self):
        """With few dirty registers the shrink is cheaper than the
        64-cycle bound."""
        registers = DistributedRegisterFile(slice_ids=range(2))
        registers.write(1, 0, 42)  # a single primary value to flush
        engine = ReconfigEngine(
            initial=VCoreConfig(2, 64), register_file=registers
        )
        result = engine.apply(VCoreConfig(1, 64))
        worst = DEFAULT_RECONFIG_COSTS.slice_shrink_cycles()
        assert result.overhead_cycles < worst
        assert result.overhead_cycles == (
            DEFAULT_RECONFIG_COSTS.pipeline_flush_cycles() + 1
        )
