"""Virtual core configurations and the configuration grid."""

import pytest
from hypothesis import given, strategies as st

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE


class TestVCoreConfig:
    def test_banks_from_kb(self):
        assert VCoreConfig(1, 64).l2_banks == 1
        assert VCoreConfig(1, 8192).l2_banks == 128

    def test_tiles(self):
        assert VCoreConfig(4, 256).tiles == 8

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VCoreConfig(0, 64)
        with pytest.raises(ValueError):
            VCoreConfig(1, 0)

    def test_rejects_fractional_banks(self):
        with pytest.raises(ValueError):
            VCoreConfig(1, 100).l2_banks

    def test_str_formats(self):
        assert str(VCoreConfig(1, 64)) == "1S/64KB"
        assert str(VCoreConfig(8, 8192)) == "8S/8MB"

    def test_ordering(self):
        assert VCoreConfig(1, 64) < VCoreConfig(2, 64)
        assert VCoreConfig(1, 64) < VCoreConfig(1, 128)

    def test_cost_rate_delegates(self):
        config = VCoreConfig(2, 128)
        assert config.cost_rate() == pytest.approx(
            DEFAULT_COST_MODEL.rate(2, 128)
        )

    def test_hit_delay_grows_with_cache(self):
        small = VCoreConfig(1, 64).mean_l2_hit_delay()
        large = VCoreConfig(1, 8192).mean_l2_hit_delay()
        assert large > small

    def test_geometry(self):
        geometry = VCoreConfig(2, 256).geometry()
        assert geometry.num_banks == 4
        assert geometry.num_slices == 2


class TestDefaultSpace:
    def test_64_configurations(self):
        # 8 Slice counts x 8 power-of-two L2 sizes (Section II-A).
        assert len(DEFAULT_CONFIG_SPACE) == 64

    def test_slice_range(self):
        assert DEFAULT_CONFIG_SPACE.slice_counts == tuple(range(1, 9))

    def test_l2_range_64kb_to_8mb(self):
        sizes = DEFAULT_CONFIG_SPACE.l2_sizes_kb
        assert sizes[0] == 64 and sizes[-1] == 8192
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_minimum_and_maximum(self):
        assert DEFAULT_CONFIG_SPACE.minimum == VCoreConfig(1, 64)
        assert DEFAULT_CONFIG_SPACE.maximum == VCoreConfig(8, 8192)

    def test_contains_and_index(self):
        config = VCoreConfig(3, 512)
        assert config in DEFAULT_CONFIG_SPACE
        assert DEFAULT_CONFIG_SPACE[DEFAULT_CONFIG_SPACE.index_of(config)] == config

    def test_index_of_unknown(self):
        with pytest.raises(KeyError):
            DEFAULT_CONFIG_SPACE.index_of(VCoreConfig(16, 64))

    def test_iteration_covers_all(self):
        assert len(set(DEFAULT_CONFIG_SPACE)) == 64


class TestNeighbors:
    def test_interior_has_four(self):
        neighbors = DEFAULT_CONFIG_SPACE.neighbors(VCoreConfig(4, 512))
        assert len(neighbors) == 4
        assert VCoreConfig(3, 512) in neighbors
        assert VCoreConfig(5, 512) in neighbors
        assert VCoreConfig(4, 256) in neighbors
        assert VCoreConfig(4, 1024) in neighbors

    def test_corner_has_two(self):
        neighbors = DEFAULT_CONFIG_SPACE.neighbors(VCoreConfig(1, 64))
        assert sorted(neighbors) == [VCoreConfig(1, 128), VCoreConfig(2, 64)]

    def test_edge_has_three(self):
        neighbors = DEFAULT_CONFIG_SPACE.neighbors(VCoreConfig(1, 512))
        assert len(neighbors) == 3

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_CONFIG_SPACE.neighbors(VCoreConfig(9, 64))

    @given(
        s=st.sampled_from(range(1, 9)),
        kb=st.sampled_from([64 * 2 ** i for i in range(8)]),
    )
    def test_neighbor_relation_is_symmetric(self, s, kb):
        config = VCoreConfig(s, kb)
        for neighbor in DEFAULT_CONFIG_SPACE.neighbors(config):
            assert config in DEFAULT_CONFIG_SPACE.neighbors(neighbor)


class TestCustomSpace:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(slice_counts=())
        with pytest.raises(ValueError):
            ConfigurationSpace(l2_sizes_kb=())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            ConfigurationSpace(slice_counts=(1, 1, 2))

    def test_two_point_menu(self):
        space = ConfigurationSpace(slice_counts=(1, 8), l2_sizes_kb=(128, 4096))
        assert len(space) == 4

    def test_sorted_by_cost(self):
        ordered = DEFAULT_CONFIG_SPACE.sorted_by_cost()
        rates = [c.cost_rate() for c in ordered]
        assert rates == sorted(rates)
        assert ordered[0] == VCoreConfig(1, 64)
        assert ordered[-1] == VCoreConfig(8, 8192)
