"""The distributed register file and Register Flush protocol (Fig. 5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.params import SliceParams
from repro.arch.registers import DistributedRegisterFile, RegisterFlushError


def make_rf(num_slices=2, **params):
    return DistributedRegisterFile(
        slice_ids=range(num_slices),
        params=SliceParams(**params) if params else SliceParams(),
    )


class TestBasicOperations:
    def test_write_then_read_locally(self):
        rf = make_rf()
        rf.write(0, 5, 42)
        assert rf.read(0, 5) == 42

    def test_remote_read_fetches_copy(self):
        rf = make_rf()
        rf.write(0, 5, 42)
        before = rf.operand_messages
        assert rf.read(1, 5) == 42
        assert rf.operand_messages == before + 1

    def test_second_remote_read_uses_local_copy(self):
        rf = make_rf()
        rf.write(0, 5, 42)
        rf.read(1, 5)
        before = rf.operand_messages
        rf.read(1, 5)
        assert rf.operand_messages == before  # no new network traffic

    def test_primary_writer_tracked(self):
        rf = make_rf()
        rf.write(1, 7, 10)
        assert rf.primary_writer(7) == 1

    def test_rewrite_moves_primary(self):
        rf = make_rf()
        rf.write(0, 7, 10)
        rf.write(1, 7, 20)
        assert rf.primary_writer(7) == 1
        assert rf.value_of(7) == 20

    def test_rewrite_invalidates_stale_copies(self):
        rf = make_rf()
        rf.write(0, 7, 10)
        rf.read(1, 7)  # slice 1 holds a copy of 10
        rf.write(0, 7, 99)
        assert rf.read(1, 7) == 99

    def test_read_unwritten_raises(self):
        rf = make_rf()
        with pytest.raises(KeyError):
            rf.read(0, 3)

    def test_register_bounds(self):
        rf = make_rf()
        with pytest.raises(ValueError):
            rf.write(0, 128, 1)
        with pytest.raises(ValueError):
            rf.write(0, -1, 1)

    def test_unknown_slice(self):
        rf = make_rf()
        with pytest.raises(KeyError):
            rf.write(5, 0, 1)

    def test_duplicate_slice_ids_rejected(self):
        with pytest.raises(ValueError):
            DistributedRegisterFile(slice_ids=[0, 0, 1])

    def test_needs_a_slice(self):
        with pytest.raises(ValueError):
            DistributedRegisterFile(slice_ids=[])


class TestFigure5Scenario:
    """The exact shrink example from Fig. 5."""

    def test_two_slice_to_one_slice_shrink(self):
        rf = make_rf(num_slices=2)
        # gr0 primarily written by Slice 0; gr1, gr2 by Slice 1.
        rf.write(0, 0, 100)   # ld gr0, ADDR1 on Slice1 (our slice 0)
        rf.write(1, 1, 200)   # ld gr1, ADDR2 on Slice2 (our slice 1)
        rf.read(0, 1)         # Slice 0 reads gr1 -> gets a local copy
        rf.write(1, 2, 300)   # add gr2, gr0, gr1 on Slice2
        rf.read(1, 0)         # Slice 2 holds a reader copy of gr0

        record = rf.shrink([0])

        # Slice 1 was the primary writer of gr1 and gr2 -> 2 pushes.
        assert record.messages == 2
        # gr1 already had a copy on the survivor (adopted), gr2 renamed.
        assert record.adopted == 1
        assert record.renamed == 1
        assert record.spills == 0
        # Full architectural state survives.
        assert rf.value_of(0) == 100
        assert rf.value_of(1) == 200
        assert rf.value_of(2) == 300
        assert rf.num_slices == 1

    def test_survivor_becomes_primary(self):
        rf = make_rf()
        rf.write(1, 9, 77)
        rf.shrink([0])
        assert rf.primary_writer(9) == 0


class TestShrinkBounds:
    def test_flush_count_bounded_by_global_registers(self):
        """Only primary writers flush, so messages <= global registers."""
        params = SliceParams()
        rf = DistributedRegisterFile(slice_ids=range(4), params=params)
        # Write as many globals as one slice's local registers allow
        # from each departing slice.
        for gr in range(params.physical_registers):
            rf.write(1 + gr % 3, gr, gr)
        record = rf.shrink([0, 1])
        live_on_departing = params.physical_registers * 2 // 3
        assert record.messages <= params.physical_registers

    def test_no_flush_when_survivor_holds_everything(self):
        rf = make_rf()
        rf.write(0, 1, 11)
        rf.write(0, 2, 22)
        record = rf.shrink([0])
        assert record.messages == 0
        assert record.cycles == 0

    def test_shrink_needs_survivors(self):
        rf = make_rf()
        with pytest.raises(ValueError):
            rf.shrink([])

    def test_shrink_unknown_survivor(self):
        rf = make_rf()
        with pytest.raises(KeyError):
            rf.shrink([9])

    def test_cycles_count_messages(self):
        rf = make_rf()
        for gr in range(10):
            rf.write(1, gr, gr)
        record = rf.shrink([0])
        assert record.cycles == record.messages == 10


class TestExpand:
    def test_expand_adds_empty_slices(self):
        rf = make_rf(num_slices=1)
        rf.write(0, 3, 33)
        rf.expand([1, 2])
        assert rf.num_slices == 3
        assert rf.read(2, 3) == 33  # remote fetch works

    def test_expand_duplicate_rejected(self):
        rf = make_rf()
        with pytest.raises(ValueError):
            rf.expand([1])


class TestStatePreservation:
    @settings(max_examples=50, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(0, 3),    # writing slice
                st.integers(0, 63),   # global register
                st.integers(0, 10_000),  # value
            ),
            min_size=1,
            max_size=120,
        ),
        survivors=st.sets(st.integers(0, 3), min_size=1, max_size=3),
    )
    def test_shrink_preserves_every_live_value(self, writes, survivors):
        """Property: architectural state is identical across any shrink
        (unless spilled, which these sizes never trigger)."""
        rf = DistributedRegisterFile(slice_ids=range(4))
        expected = {}
        for slice_id, gr, value in writes:
            rf.write(slice_id, gr, value)
            expected[gr] = value
        record = rf.shrink(sorted(survivors))
        assert record.spills == 0
        assert rf.architectural_state() == expected

    @settings(max_examples=30, deadline=None)
    @given(
        writes=st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 63), st.integers()),
            min_size=1,
            max_size=64,
        )
    )
    def test_flush_messages_equal_departing_primaries(self, writes):
        rf = make_rf(num_slices=2)
        for slice_id, gr, value in writes:
            rf.write(slice_id, gr, value)
        departing_primaries = sum(
            1 for gr in rf.live_globals() if rf.primary_writer(gr) == 1
        )
        record = rf.shrink([0])
        assert record.messages == departing_primaries
