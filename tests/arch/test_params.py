"""Table I and Table II parameter records."""

import pytest

from repro.arch.params import (
    CacheLevelParams,
    CacheParams,
    SliceParams,
    DEFAULT_CACHE_PARAMS,
    DEFAULT_SLICE_PARAMS,
)


class TestSliceParams:
    def test_table1_functional_units(self):
        assert DEFAULT_SLICE_PARAMS.functional_units == 2

    def test_table1_physical_registers(self):
        assert DEFAULT_SLICE_PARAMS.physical_registers == 128

    def test_table1_local_registers(self):
        assert DEFAULT_SLICE_PARAMS.local_registers == 64

    def test_table1_issue_window(self):
        assert DEFAULT_SLICE_PARAMS.issue_window == 32

    def test_table1_load_store_queue(self):
        assert DEFAULT_SLICE_PARAMS.load_store_queue == 32

    def test_table1_rob_size(self):
        assert DEFAULT_SLICE_PARAMS.rob_size == 64

    def test_table1_store_buffer(self):
        assert DEFAULT_SLICE_PARAMS.store_buffer == 8

    def test_table1_max_inflight_loads(self):
        assert DEFAULT_SLICE_PARAMS.max_inflight_loads == 8

    def test_table1_memory_delay(self):
        assert DEFAULT_SLICE_PARAMS.memory_delay == 100

    def test_fetch_two_per_cycle(self):
        # "the ability to fetch two instructions per cycle" (Sec III-A)
        assert DEFAULT_SLICE_PARAMS.fetch_width == 2

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_SLICE_PARAMS.rob_size = 128

    def test_rejects_nonpositive_fields(self):
        with pytest.raises(ValueError):
            SliceParams(rob_size=0)
        with pytest.raises(ValueError):
            SliceParams(memory_delay=-1)

    def test_rejects_local_exceeding_physical(self):
        with pytest.raises(ValueError):
            SliceParams(local_registers=256, physical_registers=128)

    def test_custom_params(self):
        params = SliceParams(rob_size=128, issue_window=64)
        assert params.rob_size == 128
        assert params.issue_window == 64


class TestCacheLevelParams:
    def test_l1d_table2(self):
        level = DEFAULT_CACHE_PARAMS.l1d
        assert (level.size_kb, level.block_bytes, level.associativity) == (
            16,
            64,
            2,
        )

    def test_l1i_table2(self):
        level = DEFAULT_CACHE_PARAMS.l1i
        assert (level.size_kb, level.block_bytes, level.associativity) == (
            16,
            64,
            2,
        )

    def test_l2_bank_table2(self):
        level = DEFAULT_CACHE_PARAMS.l2_bank
        assert (level.size_kb, level.block_bytes, level.associativity) == (
            64,
            64,
            4,
        )

    def test_derived_geometry(self):
        level = CacheLevelParams(size_kb=64, block_bytes=64, associativity=4)
        assert level.size_bytes == 65536
        assert level.num_blocks == 1024
        assert level.num_sets == 256

    def test_rejects_indivisible_associativity(self):
        with pytest.raises(ValueError):
            CacheLevelParams(size_kb=64, block_bytes=64, associativity=3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheLevelParams(size_kb=0, block_bytes=64, associativity=2)
        with pytest.raises(ValueError):
            CacheLevelParams(size_kb=16, block_bytes=0, associativity=2)


class TestCacheParams:
    def test_l1_hit_delay_is_3(self):
        assert DEFAULT_CACHE_PARAMS.l1_hit_delay == 3

    def test_l2_delay_formula_constants(self):
        # Table II: hit delay = distance*2 + 4
        assert DEFAULT_CACHE_PARAMS.l2_delay_per_hop == 2
        assert DEFAULT_CACHE_PARAMS.l2_base_delay == 4

    def test_network_width_64_bits(self):
        assert DEFAULT_CACHE_PARAMS.network_width_bytes == 8

    def test_l2_bank_kb(self):
        assert DEFAULT_CACHE_PARAMS.l2_bank_kb == 64

    def test_rejects_bad_delays(self):
        with pytest.raises(ValueError):
            CacheParams(l1_hit_delay=0)
        with pytest.raises(ValueError):
            CacheParams(network_width_bytes=0)
