"""On-chip networks: mesh latency, counter request/reply, privilege."""

import pytest

from repro.arch.counters import CounterKind, PerformanceCounters
from repro.arch.network import (
    CounterReply,
    OperandNetwork,
    PrivilegeError,
    RuntimeInterfaceNetwork,
    SwitchedNetwork,
    manhattan,
)


class TestManhattan:
    def test_distance(self):
        assert manhattan((0, 0), (3, 4)) == 7
        assert manhattan((2, 2), (2, 2)) == 0


class TestSwitchedNetwork:
    def test_latency_is_hops_plus_router(self):
        net = SwitchedNetwork(hop_latency=2, router_latency=1)
        assert net.latency((0, 0), (3, 0)) == 7

    def test_send_returns_arrival(self):
        net = SwitchedNetwork()
        arrival = net.send((0, 0), (2, 2), "msg", now=10)
        assert arrival == 10 + 4 + 1

    def test_advance_delivers_due_messages(self):
        net = SwitchedNetwork()
        delivered = []
        net.send((0, 0), (1, 0), "a", now=0, deliver=delivered.append)
        net.send((0, 0), (5, 5), "b", now=0, deliver=delivered.append)
        net.advance(2)
        assert delivered == ["a"]
        net.advance(100)
        assert delivered == ["a", "b"]

    def test_in_flight_count(self):
        net = SwitchedNetwork()
        net.send((0, 0), (4, 4), "x", now=0)
        assert net.in_flight == 1
        net.advance(100)
        assert net.in_flight == 0

    def test_accounting(self):
        net = SwitchedNetwork()
        net.send((0, 0), (2, 0), "x", now=0)
        net.send((0, 0), (0, 3), "y", now=0)
        assert net.messages_sent == 2
        assert net.total_hops == 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SwitchedNetwork(hop_latency=0)
        with pytest.raises(ValueError):
            SwitchedNetwork(router_latency=-1)
        net = SwitchedNetwork()
        with pytest.raises(ValueError):
            net.send((0, 0), (1, 1), "x", now=-1)

    def test_operand_network_forward(self):
        net = OperandNetwork()
        arrival = net.forward_operand((0, 0), (1, 0), value=99, now=5)
        assert arrival == 7


class TestRuntimeInterfaceNetwork:
    def _network_with_slice(self):
        net = RuntimeInterfaceNetwork()
        counters = PerformanceCounters(0)
        counters.increment(CounterKind.INSTRUCTIONS_COMMITTED, 500)
        net.register_slice(0, (4, 4), counters)
        net.grant_privilege((0, 0))
        return net, counters

    def test_counter_round_trip(self):
        net, _ = self._network_with_slice()
        reply = net.request_counter(
            (0, 0), 0, CounterKind.INSTRUCTIONS_COMMITTED, now=100
        )
        assert reply.sample.value == 500
        # Request there (8 hops + 1) and reply back: 18 cycles.
        assert reply.round_trip_cycles == 18

    def test_sample_timestamped_at_remote_read(self):
        net, _ = self._network_with_slice()
        reply = net.request_counter(
            (0, 0), 0, CounterKind.INSTRUCTIONS_COMMITTED, now=100
        )
        assert reply.sample.timestamp == 100 + 9

    def test_unprivileged_requester_rejected(self):
        net, _ = self._network_with_slice()
        with pytest.raises(PrivilegeError):
            net.request_counter(
                (9, 9), 0, CounterKind.INSTRUCTIONS_COMMITTED, now=0
            )

    def test_privilege_revocation(self):
        net, _ = self._network_with_slice()
        net.revoke_privilege((0, 0))
        with pytest.raises(PrivilegeError):
            net.request_counter(
                (0, 0), 0, CounterKind.INSTRUCTIONS_COMMITTED, now=0
            )

    def test_unknown_slice(self):
        net, _ = self._network_with_slice()
        with pytest.raises(KeyError):
            net.request_counter((0, 0), 7, CounterKind.CYCLES, now=0)

    def test_read_vcore_queries_all(self):
        net = RuntimeInterfaceNetwork()
        for slice_id in range(3):
            net.register_slice(slice_id, (slice_id, 0), PerformanceCounters(slice_id))
        net.grant_privilege((0, 0))
        replies = net.read_vcore(
            (0, 0),
            [0, 1, 2],
            [CounterKind.CYCLES, CounterKind.INSTRUCTIONS_COMMITTED],
            now=0,
        )
        assert len(replies) == 6
        assert all(isinstance(reply, CounterReply) for reply in replies)

    def test_send_command_requires_privilege(self):
        net = RuntimeInterfaceNetwork()
        with pytest.raises(PrivilegeError):
            net.send_command((1, 1), (2, 2), "EXPAND", now=0)
        net.grant_privilege((1, 1))
        arrival = net.send_command((1, 1), (2, 2), "EXPAND", now=0)
        assert arrival == 3

    def test_duplicate_registration(self):
        net = RuntimeInterfaceNetwork()
        net.register_slice(0, (0, 0), PerformanceCounters(0))
        with pytest.raises(ValueError):
            net.register_slice(0, (1, 1), PerformanceCounters(0))

    def test_unregister(self):
        net = RuntimeInterfaceNetwork()
        net.register_slice(0, (0, 0), PerformanceCounters(0))
        net.unregister_slice(0)
        net.grant_privilege((0, 0))
        with pytest.raises(KeyError):
            net.request_counter((0, 0), 0, CounterKind.CYCLES, now=0)
