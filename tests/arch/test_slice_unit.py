"""The Slice tile abstraction."""

import pytest

from repro.arch.counters import CounterKind
from repro.arch.params import SliceParams
from repro.arch.slice_unit import Slice


class TestSlice:
    def test_defaults(self):
        unit = Slice(slice_id=3, position=(2, 5))
        assert unit.slice_id == 3
        assert unit.position == (2, 5)
        assert not unit.is_allocated
        assert not unit.is_runtime_slice

    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            Slice(slice_id=-1)

    def test_counters_auto_created(self):
        unit = Slice(slice_id=0)
        unit.counters.increment(CounterKind.CYCLES, 5)
        assert unit.counters.value(CounterKind.CYCLES) == 5
        assert unit.counters.slice_id == 0

    def test_allocate_and_release(self):
        unit = Slice(slice_id=0)
        unit.allocate(7)
        assert unit.is_allocated
        assert unit.owner_vcore == 7
        unit.release()
        assert not unit.is_allocated

    def test_double_allocation_rejected(self):
        unit = Slice(slice_id=0)
        unit.allocate(1)
        with pytest.raises(ValueError):
            unit.allocate(2)

    def test_pipeline_flush_is_about_15_cycles(self):
        assert Slice(slice_id=0).pipeline_flush_cycles() == 15

    def test_pipeline_flush_scales_with_rob(self):
        deep = Slice(slice_id=0, params=SliceParams(rob_size=128))
        assert deep.pipeline_flush_cycles() > 15
