"""Timestamped performance counters and VCore-level synthesis."""

import pytest

from repro.arch.counters import (
    CounterKind,
    CounterSample,
    PerformanceCounters,
    synthesize_vcore_reading,
)


class TestPerformanceCounters:
    def test_counters_start_at_zero(self):
        counters = PerformanceCounters(0)
        for kind in CounterKind:
            assert counters.value(kind) == 0

    def test_increment(self):
        counters = PerformanceCounters(0)
        counters.increment(CounterKind.CYCLES, 10)
        counters.increment(CounterKind.CYCLES)
        assert counters.value(CounterKind.CYCLES) == 11

    def test_increment_rejects_negative(self):
        with pytest.raises(ValueError):
            PerformanceCounters(0).increment(CounterKind.CYCLES, -1)

    def test_read_is_timestamped(self):
        counters = PerformanceCounters(3)
        counters.increment(CounterKind.BRANCHES, 7)
        sample = counters.read(CounterKind.BRANCHES, timestamp=123)
        assert sample == CounterSample(
            slice_id=3, kind=CounterKind.BRANCHES, value=7, timestamp=123
        )

    def test_reset(self):
        counters = PerformanceCounters(0)
        counters.increment(CounterKind.L2_MISSES, 5)
        counters.reset()
        assert counters.value(CounterKind.L2_MISSES) == 0

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            CounterSample(0, CounterKind.CYCLES, -1, 0)
        with pytest.raises(ValueError):
            CounterSample(0, CounterKind.CYCLES, 1, -1)


def _samples(slice_id, instructions, cycles, ts):
    return [
        CounterSample(slice_id, CounterKind.INSTRUCTIONS_COMMITTED,
                      instructions, ts),
        CounterSample(slice_id, CounterKind.CYCLES, cycles, ts),
    ]


class TestSynthesis:
    def test_single_slice_ipc(self):
        reading = synthesize_vcore_reading(_samples(0, 1500, 1000, ts=10))
        assert reading.ipc == pytest.approx(1.5)

    def test_multi_slice_instructions_sum(self):
        samples = _samples(0, 800, 1000, 10) + _samples(1, 700, 1000, 12)
        reading = synthesize_vcore_reading(samples)
        assert reading.instructions == 1500
        # Cycles use the widest per-slice window, never the sum.
        assert reading.cycles == 1000
        assert reading.ipc == pytest.approx(1.5)

    def test_windowed_against_previous(self):
        previous = _samples(0, 1000, 2000, 5)
        current = _samples(0, 1600, 2500, 15)
        reading = synthesize_vcore_reading(current, previous)
        assert reading.instructions == 600
        assert reading.cycles == 500
        assert reading.ipc == pytest.approx(1.2)

    def test_window_bounds(self):
        samples = _samples(0, 10, 10, 100) + _samples(1, 10, 10, 140)
        reading = synthesize_vcore_reading(samples)
        assert reading.window_start == 100
        assert reading.window_end == 140

    def test_miss_rates(self):
        samples = [
            CounterSample(0, CounterKind.L2_ACCESSES, 100, 1),
            CounterSample(0, CounterKind.L2_MISSES, 25, 1),
            CounterSample(0, CounterKind.BRANCHES, 50, 1),
            CounterSample(0, CounterKind.BRANCH_MISPREDICTS, 5, 1),
            CounterSample(0, CounterKind.CYCLES, 10, 1),
            CounterSample(0, CounterKind.INSTRUCTIONS_COMMITTED, 10, 1),
        ]
        reading = synthesize_vcore_reading(samples)
        assert reading.l2_miss_rate == pytest.approx(0.25)
        assert reading.branch_mispredict_rate == pytest.approx(0.1)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            synthesize_vcore_reading([])

    def test_backwards_counter_rejected(self):
        previous = _samples(0, 1000, 1000, 1)
        current = _samples(0, 900, 1100, 2)  # instructions went down
        with pytest.raises(ValueError):
            synthesize_vcore_reading(current, previous)

    def test_zero_cycles_gives_zero_ipc(self):
        samples = [
            CounterSample(0, CounterKind.INSTRUCTIONS_COMMITTED, 10, 1)
        ]
        assert synthesize_vcore_reading(samples).ipc == 0.0
