"""The area-linear pricing model (Section VI-B)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.arch.cost import CostModel, DEFAULT_COST_MODEL, SECONDS_PER_HOUR
from repro.arch.vcore import VCoreConfig


class TestPaperAnchors:
    def test_slice_price(self):
        assert DEFAULT_COST_MODEL.slice_price_per_hour == pytest.approx(0.0098)

    def test_l2_price_per_64kb(self):
        assert DEFAULT_COST_MODEL.l2_price_per_64kb_hour == pytest.approx(0.0032)

    def test_minimum_config_matches_t2_micro(self):
        # 1 Slice + 64 KB L2 should price at Amazon's $0.013/hour.
        assert DEFAULT_COST_MODEL.minimum_rate == pytest.approx(0.013)

    def test_idle_is_free(self):
        assert DEFAULT_COST_MODEL.idle_price_per_hour == 0.0


class TestRate:
    def test_big_core_rate(self):
        # 8 Slices + 4 MB (64 banks): 8*.0098 + 64*.0032
        rate = DEFAULT_COST_MODEL.rate(8, 4096)
        assert rate == pytest.approx(8 * 0.0098 + 64 * 0.0032)

    def test_rate_for_config(self):
        config = VCoreConfig(slices=2, l2_kb=128)
        assert DEFAULT_COST_MODEL.rate_for(config) == pytest.approx(
            DEFAULT_COST_MODEL.rate(2, 128)
        )

    def test_zero_resources_cost_nothing(self):
        assert DEFAULT_COST_MODEL.rate(0, 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.rate(-1, 64)
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.rate(1, -64)

    @given(
        s1=st.integers(min_value=0, max_value=16),
        s2=st.integers(min_value=0, max_value=16),
        kb1=st.integers(min_value=0, max_value=8192),
        kb2=st.integers(min_value=0, max_value=8192),
    )
    def test_linearity(self, s1, s2, kb1, kb2):
        """Price is additive in resources (the paper's linear model)."""
        combined = DEFAULT_COST_MODEL.rate(s1 + s2, kb1 + kb2)
        separate = DEFAULT_COST_MODEL.rate(s1, kb1) + DEFAULT_COST_MODEL.rate(
            s2, kb2
        )
        assert combined == pytest.approx(separate)

    @given(
        slices=st.integers(min_value=1, max_value=8),
        banks=st.integers(min_value=1, max_value=128),
    )
    def test_monotone_in_resources(self, slices, banks):
        rate = DEFAULT_COST_MODEL.rate(slices, banks * 64)
        assert rate > DEFAULT_COST_MODEL.rate(slices - 1, banks * 64)
        assert rate > DEFAULT_COST_MODEL.rate(slices, (banks - 1) * 64)


class TestCostForCycles:
    def test_one_hour_equals_rate(self):
        cycles = 1.0e9 * SECONDS_PER_HOUR  # one hour at 1 GHz
        cost = DEFAULT_COST_MODEL.cost_for_cycles(1, 64, cycles)
        assert cost == pytest.approx(DEFAULT_COST_MODEL.minimum_rate)

    def test_zero_cycles_zero_cost(self):
        assert DEFAULT_COST_MODEL.cost_for_cycles(8, 8192, 0.0) == 0.0

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cost_for_cycles(1, 64, -1.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cost_for_cycles(1, 64, 100.0, cycles_per_second=0)


class TestValidation:
    def test_rejects_negative_prices(self):
        with pytest.raises(ValueError):
            CostModel(slice_price_per_hour=-0.01)
        with pytest.raises(ValueError):
            CostModel(l2_price_per_64kb_hour=-0.01)
        with pytest.raises(ValueError):
            CostModel(idle_price_per_hour=-0.01)

    def test_rejects_bad_bank_size(self):
        with pytest.raises(ValueError):
            CostModel(l2_bank_kb=0)

    def test_ratios_are_what_matter(self):
        """Doubling all prices preserves every cost ratio (the paper
        stresses its conclusions rest only on ratios)."""
        doubled = CostModel(
            slice_price_per_hour=2 * 0.0098,
            l2_price_per_64kb_hour=2 * 0.0032,
        )
        a = VCoreConfig(3, 256)
        b = VCoreConfig(8, 4096)
        original_ratio = DEFAULT_COST_MODEL.rate_for(a) / DEFAULT_COST_MODEL.rate_for(b)
        doubled_ratio = doubled.rate_for(a) / doubled.rate_for(b)
        assert original_ratio == pytest.approx(doubled_ratio)
