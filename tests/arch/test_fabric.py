"""Spatial allocation on the 2D fabric (Fig. 3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.fabric import Fabric, FabricError, TileKind
from repro.arch.vcore import VCoreConfig


class TestConstruction:
    def test_tile_count(self):
        fabric = Fabric(width=8, height=8)
        assert len(fabric.tiles) == 64

    def test_default_mix_is_half_and_half(self):
        fabric = Fabric(width=8, height=8)
        slices = sum(
            1 for t in fabric.tiles.values() if t.kind is TileKind.SLICE
        )
        assert slices == 32

    def test_bank_ratio(self):
        fabric = Fabric(width=6, height=6, bank_ratio=2)
        slices = sum(
            1 for t in fabric.tiles.values() if t.kind is TileKind.SLICE
        )
        assert slices == 12  # one in three tiles

    def test_slice_ids_unique(self):
        fabric = Fabric(width=8, height=8)
        ids = [
            t.slice_unit.slice_id
            for t in fabric.tiles.values()
            if t.kind is TileKind.SLICE
        ]
        assert len(set(ids)) == len(ids)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            Fabric(width=0, height=4)
        with pytest.raises(ValueError):
            Fabric(width=4, height=4, bank_ratio=0)

    def test_tile_lookup(self):
        fabric = Fabric(width=4, height=4)
        assert fabric.tile((0, 0)).position == (0, 0)
        with pytest.raises(KeyError):
            fabric.tile((99, 99))


class TestAllocation:
    def test_allocates_requested_resources(self):
        fabric = Fabric()
        allocation = fabric.allocate(1, VCoreConfig(4, 512))
        assert len(allocation.slice_positions) == 4
        assert len(allocation.bank_positions) == 8

    def test_tiles_marked_owned(self):
        fabric = Fabric()
        allocation = fabric.allocate(1, VCoreConfig(2, 128))
        for position in allocation.positions:
            assert fabric.tile(position).owner_vcore == 1

    def test_compactness(self):
        """A small virtual core occupies a tight neighbourhood."""
        fabric = Fabric()
        allocation = fabric.allocate(1, VCoreConfig(2, 128))
        assert allocation.mean_slice_to_bank_distance() <= 4.0

    def test_duplicate_vcore_id(self):
        fabric = Fabric()
        fabric.allocate(1, VCoreConfig(1, 64))
        with pytest.raises(FabricError):
            fabric.allocate(1, VCoreConfig(1, 64))

    def test_insufficient_slices(self):
        fabric = Fabric(width=4, height=4)  # 8 slices
        with pytest.raises(FabricError):
            fabric.allocate(1, VCoreConfig(9, 64))

    def test_insufficient_banks(self):
        fabric = Fabric(width=4, height=4)  # 8 banks = 512 KB
        with pytest.raises(FabricError):
            fabric.allocate(1, VCoreConfig(1, 1024))

    def test_release_frees_tiles(self):
        fabric = Fabric()
        fabric.allocate(1, VCoreConfig(4, 512))
        before = fabric.count_free(TileKind.SLICE)
        fabric.release(1)
        assert fabric.count_free(TileKind.SLICE) == before + 4

    def test_release_unknown(self):
        with pytest.raises(FabricError):
            Fabric().release(42)

    def test_reallocate_resizes(self):
        fabric = Fabric()
        fabric.allocate(1, VCoreConfig(8, 2048))
        allocation = fabric.reallocate(1, VCoreConfig(1, 64))
        assert allocation.config == VCoreConfig(1, 64)
        assert len(fabric.allocations) == 1

    def test_utilization(self):
        fabric = Fabric(width=4, height=4)
        assert fabric.utilization() == 0.0
        fabric.allocate(1, VCoreConfig(2, 128))
        assert fabric.utilization() == pytest.approx(4 / 16)

    @settings(max_examples=25, deadline=None)
    @given(
        requests=st.lists(
            st.tuples(
                st.integers(1, 4),
                st.sampled_from([64, 128, 256, 512]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_allocations_never_overlap(self, requests):
        """Property: no tile is ever granted to two virtual cores."""
        fabric = Fabric()
        owned = {}
        for vcore_id, (slices, l2_kb) in enumerate(requests):
            try:
                allocation = fabric.allocate(vcore_id, VCoreConfig(slices, l2_kb))
            except FabricError:
                continue
            for position in allocation.positions:
                assert position not in owned, "tile double-booked"
                owned[position] = vcore_id

    def test_allocation_kinds_are_correct(self):
        fabric = Fabric()
        allocation = fabric.allocate(1, VCoreConfig(3, 256))
        for position in allocation.slice_positions:
            assert fabric.tile(position).kind is TileKind.SLICE
        for position in allocation.bank_positions:
            assert fabric.tile(position).kind is TileKind.L2_BANK


class TestDefragmentation:
    def test_defragment_preserves_allocations(self):
        fabric = Fabric()
        for vcore_id in range(4):
            fabric.allocate(vcore_id, VCoreConfig(2, 128))
        fabric.release(1)  # punch a hole
        fabric.defragment()
        assert set(fabric.allocations) == {0, 2, 3}
        for allocation in fabric.allocations.values():
            assert allocation.config == VCoreConfig(2, 128)

    def test_defragment_enables_large_allocation(self):
        """After fragmentation, rescheduling makes room — 'fixing
        fragmentation problems is as simple as rescheduling Slices'."""
        fabric = Fabric(width=8, height=8)
        for vcore_id in range(8):
            fabric.allocate(vcore_id, VCoreConfig(2, 128))
        for vcore_id in (1, 3, 5, 7):
            fabric.release(vcore_id)
        fabric.defragment()
        # 16 free slices exist; a big core must now fit.
        allocation = fabric.allocate(99, VCoreConfig(8, 512))
        assert allocation.config.slices == 8


class TestFreeIndexConsistency:
    """The FAST free-tile index must always agree with a full scan."""

    @staticmethod
    def _scan_free(fabric, kind):
        """Ground truth: row-major scan, exactly the scalar path."""
        return [
            position
            for position, tile in fabric.tiles.items()
            if tile.kind is kind and tile.is_free
        ]

    @staticmethod
    def _apply(fabric, op):
        action = op[0]
        try:
            if action == "alloc":
                _, vcore_id, slices, l2_kb = op
                fabric.allocate(vcore_id, VCoreConfig(slices, l2_kb))
            elif action == "realloc":
                _, vcore_id, slices, l2_kb = op
                fabric.reallocate(vcore_id, VCoreConfig(slices, l2_kb))
            elif action == "release":
                fabric.release(op[1])
            else:
                fabric.defragment()
        except FabricError:
            pass

    @settings(max_examples=30, deadline=None)
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(
                    st.just("alloc"),
                    st.integers(0, 5),
                    st.integers(1, 4),
                    st.sampled_from([64, 128, 256, 512]),
                ),
                st.tuples(
                    st.just("realloc"),
                    st.integers(0, 5),
                    st.integers(1, 4),
                    st.sampled_from([64, 128, 256, 512]),
                ),
                st.tuples(st.just("release"), st.integers(0, 5)),
                st.tuples(st.just("defrag")),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_index_matches_full_scan(self, ops):
        from repro import perf

        fabric = Fabric(width=8, height=8)
        for op in ops:
            self._apply(fabric, op)
            for kind in (TileKind.SLICE, TileKind.L2_BANK):
                expected = self._scan_free(fabric, kind)
                # Counters match the recount...
                assert fabric.count_free(kind) == len(expected)
                # ...and the FAST enumeration reproduces the scalar
                # scan order exactly (seed selection depends on it).
                with perf.fast_paths(True):
                    fast_positions = fabric._free_positions(kind)
                with perf.fast_paths(False):
                    scalar_positions = fabric._free_positions(kind)
                assert fast_positions == expected
                assert scalar_positions == expected

    def test_kind_totals_are_invariant(self):
        fabric = Fabric(width=8, height=8)
        before = {
            kind: fabric.kind_total(kind)
            for kind in (TileKind.SLICE, TileKind.L2_BANK)
        }
        fabric.allocate(1, VCoreConfig(4, 512))
        fabric.defragment()
        fabric.release(1)
        for kind, total in before.items():
            assert fabric.kind_total(kind) == total
            assert fabric.count_free(kind) == total
