"""Snapshot/restore of the runtime's learned state."""

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import VCoreConfig
from repro.runtime.cash import CASHRuntime, LegObservation, QoSMeasurement
from repro.runtime.persistence import (
    SnapshotError,
    load_snapshot,
    restore_runtime,
    save_snapshot,
    snapshot_runtime,
)

CONFIGS = [
    VCoreConfig(1, 64),
    VCoreConfig(2, 128),
    VCoreConfig(4, 256),
    VCoreConfig(8, 512),
]
TRUE_QOS = {
    CONFIGS[0]: 0.6,
    CONFIGS[1]: 1.1,
    CONFIGS[2]: 1.9,
    CONFIGS[3]: 2.6,
}


def make_runtime(**kwargs):
    return CASHRuntime(
        configs=CONFIGS,
        cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in CONFIGS],
        qos_goal=1.5,
        base_config=CONFIGS[0],
        initial_base_qos=0.5,
        explore=False,
        **kwargs,
    )


def drive(runtime, steps, scale=1.0, signature=(0.3, 0.1, 0.03)):
    measurement = None
    deliveries = []
    for _ in range(steps):
        decision = runtime.step(measurement)
        total = 0.0
        legs = []
        for entry in decision.schedule.entries:
            q = (
                0.0
                if entry.point.is_idle
                else TRUE_QOS[entry.point.config] * scale
            )
            total += q * entry.fraction
            legs.append(LegObservation(entry.point.config, entry.fraction, q))
        measurement = QoSMeasurement(
            overall_qos=total, legs=tuple(legs), signature=signature
        )
        deliveries.append(total)
    return deliveries


class TestRoundTrip:
    def test_snapshot_is_json_serializable(self):
        import json

        runtime = make_runtime()
        drive(runtime, 20)
        payload = json.dumps(snapshot_runtime(runtime))
        assert "version" in payload

    def test_restore_reproduces_estimates(self):
        source = make_runtime()
        drive(source, 30)
        snapshot = snapshot_runtime(source)

        target = make_runtime()
        restore_runtime(target, snapshot)
        for config in CONFIGS:
            assert target.learner.qos_estimate(config) == pytest.approx(
                source.learner.qos_estimate(config)
            )
        assert target.estimator.estimate == pytest.approx(
            source.estimator.estimate
        )

    def test_restored_runtime_skips_relearning(self):
        """A fresh runtime violates during cold start; a restored one
        picks up where the donor converged."""
        donor = make_runtime()
        drive(donor, 40)
        snapshot = snapshot_runtime(donor)

        cold = make_runtime()
        cold_deliveries = drive(cold, 6)
        warm = make_runtime()
        restore_runtime(warm, snapshot)
        warm_deliveries = drive(warm, 6)

        goal = 1.5
        cold_misses = sum(q < goal * 0.97 for q in cold_deliveries)
        warm_misses = sum(q < goal * 0.97 for q in warm_deliveries)
        assert warm_misses <= cold_misses

    def test_phase_bank_survives(self):
        donor = make_runtime()
        drive(donor, 25)
        drive(donor, 25, scale=0.5, signature=(0.2, 0.05, 0.08))
        assert donor.learner.known_phases >= 2
        snapshot = snapshot_runtime(donor)
        target = make_runtime()
        restore_runtime(target, snapshot)
        assert target.learner.known_phases == donor.learner.known_phases

    def test_file_round_trip(self, tmp_path):
        runtime = make_runtime()
        drive(runtime, 15)
        path = tmp_path / "runtime.json"
        save_snapshot(runtime, str(path))
        target = make_runtime()
        load_snapshot(target, str(path))
        assert target.learner.qos_estimate(CONFIGS[2]) == pytest.approx(
            runtime.learner.qos_estimate(CONFIGS[2])
        )


class TestValidation:
    def test_rejects_wrong_version(self):
        runtime = make_runtime()
        snapshot = snapshot_runtime(runtime)
        snapshot["version"] = 99
        with pytest.raises(SnapshotError):
            restore_runtime(make_runtime(), snapshot)

    def test_rejects_mismatched_menu(self):
        runtime = make_runtime()
        snapshot = snapshot_runtime(runtime)
        other = CASHRuntime(
            configs=CONFIGS[:2],
            cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in CONFIGS[:2]],
            qos_goal=1.5,
            base_config=CONFIGS[0],
            initial_base_qos=0.5,
        )
        with pytest.raises(SnapshotError):
            restore_runtime(other, snapshot)

    def test_rejects_bad_phase_index(self):
        runtime = make_runtime()
        snapshot = snapshot_runtime(runtime)
        snapshot["learner"]["current_phase"] = 42
        with pytest.raises(SnapshotError):
            restore_runtime(make_runtime(), snapshot)
