"""The deadbeat QoS controller (Eqns. 1-2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.controller import DeadbeatController


class TestConstruction:
    def test_initial_speedup_targets_goal(self):
        controller = DeadbeatController(qos_goal=2.0, base_qos=0.5)
        assert controller.speedup == pytest.approx(4.0)

    def test_explicit_initial_speedup(self):
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=1.0, initial_speedup=3.0
        )
        assert controller.speedup == 3.0

    def test_initial_speedup_clamped(self):
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=1.0, initial_speedup=100.0, max_speedup=8.0
        )
        assert controller.speedup == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadbeatController(qos_goal=0, base_qos=1)
        with pytest.raises(ValueError):
            DeadbeatController(qos_goal=1, base_qos=0)
        with pytest.raises(ValueError):
            DeadbeatController(qos_goal=1, base_qos=1, min_speedup=-1)
        with pytest.raises(ValueError):
            DeadbeatController(
                qos_goal=1, base_qos=1, min_speedup=5, max_speedup=5
            )
        with pytest.raises(ValueError):
            DeadbeatController(qos_goal=1, base_qos=1, gain=0)
        with pytest.raises(ValueError):
            DeadbeatController(qos_goal=1, base_qos=1, gain=1.5)


class TestControlLaw:
    def test_error_is_goal_minus_measured(self):
        controller = DeadbeatController(qos_goal=1.0, base_qos=0.5)
        assert controller.error(0.8) == pytest.approx(0.2)

    def test_eqn2_update(self):
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=0.5, initial_speedup=2.0
        )
        # s(t) = s(t-1) + e(t)/b = 2 + (1 - 0.8)/0.5 = 2.4
        assert controller.update(0.8) == pytest.approx(2.4)
        assert controller.last_error == pytest.approx(0.2)

    def test_kalman_estimate_substitutes_for_b(self):
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=0.5, initial_speedup=2.0
        )
        assert controller.update(0.8, base_estimate=0.4) == pytest.approx(2.5)

    def test_deadbeat_converges_in_one_step(self):
        """With a perfect model (q = s*b), the error vanishes after one
        update — the definition of deadbeat control."""
        b = 0.4
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=b, initial_speedup=1.0
        )
        q = controller.speedup * b  # delivered QoS
        controller.update(q)
        q = controller.speedup * b
        assert q == pytest.approx(1.0)

    def test_damped_gain_converges_geometrically(self):
        b = 0.5
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=b, initial_speedup=0.0, gain=0.5
        )
        errors = []
        for _ in range(20):
            q = controller.speedup * b
            errors.append(abs(1.0 - q))
            controller.update(q)
        assert errors[-1] < 1e-4
        assert errors[0] > errors[5] > errors[10]

    @settings(max_examples=50, deadline=None)
    @given(
        b=st.floats(min_value=0.05, max_value=5.0),
        goal=st.floats(min_value=0.1, max_value=10.0),
        gain=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_steady_state_error_vanishes(self, b, goal, gain):
        """Property: under a constant-base plant the integral action
        drives the error to zero for any stable gain."""
        controller = DeadbeatController(
            qos_goal=goal, base_qos=b, initial_speedup=0.0,
            max_speedup=1e6, gain=gain,
        )
        for _ in range(200):
            controller.update(controller.speedup * b)
        assert controller.speedup * b == pytest.approx(goal, rel=1e-3)

    def test_anti_windup_clamps_demand(self):
        controller = DeadbeatController(qos_goal=10.0, base_qos=0.1)
        for _ in range(50):
            controller.update(0.5, max_useful_speedup=4.0)
        assert controller.speedup == 4.0

    def test_recovery_after_anti_windup(self):
        """Once the demand becomes satisfiable, the clamped integrator
        reacts immediately instead of unwinding a huge backlog."""
        controller = DeadbeatController(
            qos_goal=1.0, base_qos=0.5, initial_speedup=2.0
        )
        for _ in range(50):
            controller.update(0.2, max_useful_speedup=3.0)
        assert controller.speedup == 3.0
        # Deliver above goal: demand must drop within a couple steps.
        controller.update(1.5)
        controller.update(1.5)
        assert controller.speedup < 2.0

    def test_rejects_bad_inputs(self):
        controller = DeadbeatController(qos_goal=1.0, base_qos=1.0)
        with pytest.raises(ValueError):
            controller.update(-0.1)
        with pytest.raises(ValueError):
            controller.update(1.0, base_estimate=0.0)
        with pytest.raises(ValueError):
            controller.update(1.0, max_useful_speedup=0.0)


class TestRetargetAndReset:
    def test_retarget(self):
        controller = DeadbeatController(qos_goal=1.0, base_qos=1.0)
        controller.retarget(2.0)
        assert controller.qos_goal == 2.0
        with pytest.raises(ValueError):
            controller.retarget(0.0)

    def test_reset_defaults_to_goal(self):
        controller = DeadbeatController(
            qos_goal=2.0, base_qos=0.5, initial_speedup=9.0
        )
        controller.reset()
        assert controller.speedup == pytest.approx(4.0)
        assert controller.last_error == 0.0

    def test_reset_explicit(self):
        controller = DeadbeatController(qos_goal=1.0, base_qos=1.0)
        controller.reset(5.0)
        assert controller.speedup == 5.0
