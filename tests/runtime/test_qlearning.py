"""Online speedup learning (Eqn. 7), the phase bank, and exploration."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.vcore import VCoreConfig
from repro.runtime.qlearning import (
    ExplorationPolicy,
    SpeedupLearner,
    resource_prior,
)

CONFIGS = [
    VCoreConfig(1, 64),
    VCoreConfig(2, 128),
    VCoreConfig(4, 512),
    VCoreConfig(8, 4096),
]
BASE = CONFIGS[0]


def make_learner(alpha=0.5, base_qos=1.0):
    return SpeedupLearner(
        configs=CONFIGS, base_config=BASE, base_qos=base_qos, alpha=alpha
    )


class TestResourcePrior:
    def test_base_has_prior_one(self):
        assert resource_prior(BASE, BASE) == pytest.approx(1.0)

    def test_more_resources_higher_prior(self):
        priors = [resource_prior(c, BASE) for c in CONFIGS]
        assert priors == sorted(priors)
        assert priors[-1] > priors[0]


class TestEqn7:
    def test_first_observation_replaces_prior(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 3.0)
        assert learner.qos_estimate(CONFIGS[1]) == 3.0

    def test_exponential_average_after_first(self):
        learner = make_learner(alpha=0.5)
        learner.observe(CONFIGS[1], 2.0)
        learner.observe(CONFIGS[1], 4.0)
        # q̂ = (1-α)*2 + α*4 = 3
        assert learner.qos_estimate(CONFIGS[1]) == pytest.approx(3.0)

    def test_speedup_is_ratio_to_base(self):
        learner = make_learner(base_qos=0.5)
        learner.observe(CONFIGS[1], 2.0)
        assert learner.speedup(CONFIGS[1]) == pytest.approx(4.0)

    def test_set_base_qos_shifts_all_speedups(self):
        learner = make_learner(base_qos=1.0)
        learner.observe(CONFIGS[1], 2.0)
        learner.set_base_qos(2.0)
        assert learner.speedup(CONFIGS[1]) == pytest.approx(1.0)

    def test_visits_and_staleness(self):
        learner = make_learner()
        assert learner.visits(CONFIGS[2]) == 0
        learner.observe(CONFIGS[2], 1.0)
        learner.observe(CONFIGS[1], 1.0)
        assert learner.visits(CONFIGS[2]) == 1
        assert learner.staleness(CONFIGS[2]) == 1
        assert learner.staleness(CONFIGS[1]) == 0
        assert learner.staleness(CONFIGS[3]) > 1

    def test_unknown_config_rejected(self):
        learner = make_learner()
        with pytest.raises(KeyError):
            learner.observe(VCoreConfig(7, 64), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_learner(alpha=0.0)
        with pytest.raises(ValueError):
            make_learner(base_qos=0.0)
        with pytest.raises(ValueError):
            SpeedupLearner(
                configs=CONFIGS, base_config=VCoreConfig(5, 64), base_qos=1.0
            )
        learner = make_learner()
        with pytest.raises(ValueError):
            learner.observe(BASE, -1.0)
        with pytest.raises(ValueError):
            learner.set_base_qos(0.0)

    @settings(max_examples=40, deadline=None)
    @given(observations=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=50))
    def test_estimate_stays_within_observed_range(self, observations):
        """Property: an exponential average never leaves the convex
        hull of its observations."""
        learner = make_learner()
        for value in observations:
            learner.observe(CONFIGS[1], value)
        estimate = learner.qos_estimate(CONFIGS[1])
        assert min(observations) - 1e-9 <= estimate <= max(observations) + 1e-9


class TestPhaseBank:
    SIG_A = (0.30, 0.10, 0.03)
    SIG_B = (0.20, 0.05, 0.08)

    def test_new_phase_creates_fresh_table(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 5.0)
        recalled = learner.on_phase_change(
            1.0, 2.0, signature=self.SIG_A, anchor_qos=1.0
        )
        assert recalled is False
        assert learner.known_phases == 2
        # Fresh seeds come from the prior, not the old observation.
        assert learner.qos_estimate(CONFIGS[1]) != 5.0

    def test_revisited_phase_recalls_converged_table(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 5.0)           # phase 0 knowledge
        learner.on_phase_change(1.0, 2.0, signature=self.SIG_A)
        learner.observe(CONFIGS[1], 9.0)           # phase A knowledge
        recalled = learner.on_phase_change(2.0, 1.0, signature=self.SIG_B)
        assert recalled is False                   # phase B is new
        recalled = learner.on_phase_change(1.0, 2.0, signature=self.SIG_A)
        assert recalled is True
        assert learner.qos_estimate(CONFIGS[1]) == pytest.approx(9.0)

    def test_same_level_different_signature_not_confused(self):
        """Two phases sharing a base speed must keep separate tables —
        the counter signature disambiguates."""
        learner = make_learner()
        learner.on_phase_change(1.0, 0.5, signature=self.SIG_A)
        learner.observe(CONFIGS[2], 4.0)
        learner.on_phase_change(0.5, 0.5, signature=self.SIG_B)
        assert learner.known_phases == 3
        assert learner.qos_estimate(CONFIGS[2]) != 4.0

    def test_noisy_signature_still_matches(self):
        learner = make_learner()
        learner.on_phase_change(1.0, 2.0, signature=self.SIG_A)
        learner.observe(CONFIGS[1], 7.0)
        learner.on_phase_change(2.0, 1.0, signature=self.SIG_B)
        noisy = tuple(x * 1.03 for x in self.SIG_A)  # 3% noise
        assert learner.on_phase_change(1.0, 2.0, signature=noisy) is True

    def test_optimistic_seeding_uses_anchor(self):
        learner = make_learner()
        # Drive an estimate near zero, then change phase: the fresh
        # seed must recover via the anchor, not inherit the collapse.
        learner.observe(CONFIGS[3], 0.001)
        learner.on_phase_change(1.0, 0.001, signature=self.SIG_A,
                                anchor_qos=1.0)
        assert learner.qos_estimate(CONFIGS[3]) > 1.0

    def test_rescale_applies_to_banked_tables(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 4.0)
        learner.on_phase_change(1.0, 2.0, signature=self.SIG_A)
        learner.rescale_on_phase_change(0.5)
        learner.on_phase_change(2.0, 1.0, signature=())  # back... new
        # Recall the original (index 0) is impossible (empty signature
        # never matches), but the banked first table was rescaled:
        bank_entry = learner._bank[0]["table"]
        assert bank_entry[CONFIGS[1]].qos == pytest.approx(2.0)

    def test_validation(self):
        learner = make_learner()
        with pytest.raises(ValueError):
            learner.on_phase_change(0.0, 1.0)
        with pytest.raises(ValueError):
            learner.on_phase_change(1.0, 1.0, match_tolerance=0)
        with pytest.raises(ValueError):
            learner.rescale_on_phase_change(0.0)


class TestUcb:
    def test_unvisited_config_gets_bonus(self):
        learner = make_learner()
        for config in CONFIGS[:3]:
            for _ in range(20):
                learner.observe(config, 1.0)
        # CONFIGS[3] is unvisited; its prior is highest anyway, and the
        # bonus amplifies it.
        assert learner.ucb_candidate() == CONFIGS[3]

    def test_potential_shrinks_with_visits(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 2.0)
        early = learner.ucb_potential(CONFIGS[1])
        for _ in range(30):
            learner.observe(CONFIGS[1], 2.0)
        late = learner.ucb_potential(CONFIGS[1])
        assert late < early
        assert late >= 2.0  # never below the estimate itself

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            make_learner().ucb_candidate(exploration_weight=-1)


class TestExplorationPolicy:
    def test_epsilon_decays_to_floor(self):
        learner = make_learner()
        policy = ExplorationPolicy(
            learner, epsilon=0.5, epsilon_floor=0.1, decay=0.5,
            rng=random.Random(0),
        )
        for _ in range(20):
            policy.maybe_explore(1.0)
        assert policy.epsilon == pytest.approx(0.1)

    def test_never_explores_with_zero_epsilon(self):
        learner = make_learner()
        policy = ExplorationPolicy(
            learner, epsilon=0.0, epsilon_floor=0.0, rng=random.Random(0)
        )
        assert all(
            policy.maybe_explore(1.0) is None for _ in range(50)
        )

    def test_prefers_cheap_probes(self):
        learner = make_learner()
        policy = ExplorationPolicy(
            learner,
            epsilon=1.0,
            epsilon_floor=1.0,
            decay=1.0,
            rng=random.Random(0),
            cost_rates={c: c.cost_rate() for c in CONFIGS},
        )
        candidate = policy.maybe_explore(0.0)
        assert candidate is not None
        # All configs are equally stale; the cheapest wins.
        assert candidate == CONFIGS[0]

    def test_validation(self):
        learner = make_learner()
        with pytest.raises(ValueError):
            ExplorationPolicy(learner, epsilon=2.0)
        with pytest.raises(ValueError):
            ExplorationPolicy(learner, epsilon=0.1, epsilon_floor=0.5)
        with pytest.raises(ValueError):
            ExplorationPolicy(learner, decay=0.0)
