"""Incremental learned-point view vs from-scratch reconstruction.

``LearnedPoints`` patches only the entries whose Q-learning estimates
moved and caches the lower hull against the learner's version counter.
These tests drive a learner through arbitrary interleaved update
sequences (observations, phase changes, global rescales, bank recalls)
and after every step compare the incremental view — points, hull and
envelope — with a from-scratch rebuild through the seed code path.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import VCoreConfig
from repro.runtime.optimizer import (
    ConfigPoint,
    IDLE_POINT,
    LearningOptimizer,
    _lower_hull,
    compute_envelope,
    lower_envelope_cost,
)
from repro.runtime.qlearning import SpeedupLearner

CONFIGS = [
    VCoreConfig(1, 64),
    VCoreConfig(1, 512),
    VCoreConfig(2, 128),
    VCoreConfig(4, 512),
    VCoreConfig(4, 4096),
    VCoreConfig(8, 1024),
    VCoreConfig(8, 4096),
]
BASE = CONFIGS[0]
COST_RATES = [c.cost_rate(DEFAULT_COST_MODEL) for c in CONFIGS]


def make_view():
    learner = SpeedupLearner(configs=CONFIGS, base_config=BASE, base_qos=1.0)
    optimizer = LearningOptimizer(configs=CONFIGS, cost_rates=COST_RATES)
    return learner, optimizer, optimizer.learned_points(learner)


def scratch_points(learner):
    """The seed construction: fresh dict, fresh ConfigPoint list."""
    estimates = learner.qos_estimates()
    return [
        ConfigPoint(config=c, speedup=estimates[c], cost_rate=rate)
        for c, rate in zip(CONFIGS, COST_RATES)
    ]


def assert_view_matches_scratch(view, learner):
    fresh = scratch_points(learner)
    assert view.points() == fresh
    hull, best_at = view.envelope(IDLE_POINT)
    fresh_hull, fresh_best = compute_envelope(fresh, IDLE_POINT)
    # The cached envelope is published frozen (tuple hull, read-only
    # best_at view); contents must still match the scratch build.
    assert list(hull) == fresh_hull
    # The incremental view resolves owners for hull vertices only —
    # exactly the keys the two-config LP ever looks up.
    for vertex in hull:
        assert best_at[vertex] == fresh_best[vertex]
    # And through the public hull entry point used by the LP solver.
    assert list(hull) == _lower_hull(
        [(p.speedup, p.cost_rate) for p in fresh] + [
            (IDLE_POINT.speedup, IDLE_POINT.cost_rate)
        ]
    )


# One symbolic action per step; hypothesis explores interleavings.
ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["observe", "rescale", "phase", "recall"]),
        st.integers(0, len(CONFIGS) - 1),
        st.floats(0.2, 6.0),
    ),
    min_size=1,
    max_size=40,
)


def apply_action(learner, action):
    kind, config_index, value = action
    if kind == "observe":
        learner.observe(CONFIGS[config_index], value)
    elif kind == "rescale":
        learner.rescale_on_phase_change(max(value, 0.25))
    elif kind == "phase":
        learner.on_phase_change(1.0, value, signature=(value,))
    else:  # revisit an earlier level: may recall a bank entry
        learner.on_phase_change(value, 1.0, signature=(1.0,))


class TestIncrementalEnvelope:
    @given(actions=ACTIONS)
    @settings(max_examples=50, deadline=None)
    def test_matches_scratch_after_arbitrary_updates(self, actions):
        learner, _, view = make_view()
        for action in actions:
            apply_action(learner, action)
            assert_view_matches_scratch(view, learner)

    @given(actions=ACTIONS)
    @settings(max_examples=25, deadline=None)
    def test_matches_scratch_when_read_only_at_end(self, actions):
        # Reads between updates change which incremental path runs
        # (change-log deltas vs full rebuild); reading only at the end
        # must give the same answer.
        learner, _, view = make_view()
        for action in actions:
            apply_action(learner, action)
        assert_view_matches_scratch(view, learner)

    def test_change_log_overflow_falls_back_to_full_rebuild(self):
        learner, _, view = make_view()
        view.points()  # pin a version, then overflow the bounded log
        rng = random.Random(7)
        for _ in range(SpeedupLearner.CHANGE_LOG_LIMIT + 50):
            learner.observe(rng.choice(CONFIGS), rng.uniform(0.2, 6.0))
        assert learner.changes_since(0) is None
        assert_view_matches_scratch(view, learner)

    def test_solver_agrees_with_seed_path(self):
        learner, optimizer, view = make_view()
        rng = random.Random(3)
        for _ in range(60):
            learner.observe(rng.choice(CONFIGS), rng.uniform(0.2, 6.0))
            target = rng.uniform(0.1, 3.0)
            estimates = learner.qos_estimates()
            try:
                expected = optimizer.optimal_cost(estimates, target)
            except ValueError:
                with pytest.raises(ValueError):
                    optimizer.optimal_cost_points(view, target)
                continue
            assert optimizer.optimal_cost_points(view, target) == expected
            assert optimizer.schedule_points(view, target) == (
                optimizer.schedule(estimates, target)
            )

    def test_reference_mode_rebuilds_every_read(self):
        learner, _, view = make_view()
        with perf.fast_paths(False):
            first = view.points()
            learner.observe(CONFIGS[2], 4.2)
            second = view.points()
        assert first is not second
        assert second == scratch_points(learner)

    def test_envelope_cache_reuse_without_updates(self):
        learner, _, view = make_view()
        learner.observe(CONFIGS[3], 2.5)
        assert view.envelope(IDLE_POINT) is view.envelope(IDLE_POINT)
        learner.observe(CONFIGS[3], 2.8)
        assert_view_matches_scratch(view, learner)


class TestLearnerChangeTracking:
    def test_version_advances_on_estimate_change(self):
        learner = SpeedupLearner(
            configs=CONFIGS, base_config=BASE, base_qos=1.0
        )
        before = learner.estimates_version
        learner.observe(CONFIGS[1], 3.0)
        assert learner.estimates_version == before + 1
        assert learner.changes_since(before) == [CONFIGS[1]]

    def test_noop_observation_does_not_advance(self):
        learner = SpeedupLearner(
            configs=CONFIGS, base_config=BASE, base_qos=1.0
        )
        learner.observe(CONFIGS[1], 3.0)
        version = learner.estimates_version
        learner.observe(CONFIGS[1], 3.0)  # estimate already exactly 3.0
        assert learner.estimates_version == version
        assert learner.changes_since(version) == []

    def test_phase_change_signals_full_rebuild(self):
        learner = SpeedupLearner(
            configs=CONFIGS, base_config=BASE, base_qos=1.0
        )
        version = learner.estimates_version
        learner.on_phase_change(1.0, 2.0, signature=(2.0,))
        assert learner.changes_since(version) is None

    def test_max_qos_estimate_tracks_dict_max(self):
        learner = SpeedupLearner(
            configs=CONFIGS, base_config=BASE, base_qos=1.0
        )
        rng = random.Random(11)
        for _ in range(30):
            learner.observe(rng.choice(CONFIGS), rng.uniform(0.2, 6.0))
            assert learner.max_qos_estimate() == pytest.approx(
                max(learner.qos_estimates().values()), abs=0.0
            )
