"""The correlation-aware learner (the paper's future-work extension)."""

import pytest

from repro.arch.vcore import VCoreConfig
from repro.runtime.correlated import GridSmoothingLearner, grid_distance

CONFIGS = [
    VCoreConfig(1, 64),
    VCoreConfig(2, 64),
    VCoreConfig(2, 128),
    VCoreConfig(4, 256),
    VCoreConfig(8, 8192),
]
BASE = CONFIGS[0]


def make_learner(**overrides):
    defaults = dict(
        configs=CONFIGS, base_config=BASE, base_qos=1.0, propagation=0.5
    )
    defaults.update(overrides)
    return GridSmoothingLearner(**defaults)


class TestGridDistance:
    def test_slice_steps(self):
        assert grid_distance(VCoreConfig(1, 64), VCoreConfig(3, 64)) == 2

    def test_cache_steps_are_logarithmic(self):
        assert grid_distance(VCoreConfig(1, 64), VCoreConfig(1, 256)) == 2

    def test_combined(self):
        assert grid_distance(VCoreConfig(1, 64), VCoreConfig(2, 128)) == 2

    def test_symmetric(self):
        a, b = VCoreConfig(3, 512), VCoreConfig(7, 64)
        assert grid_distance(a, b) == grid_distance(b, a)


class TestPropagation:
    def test_observation_informs_neighbours(self):
        learner = make_learner()
        before = learner.qos_estimate(CONFIGS[1])
        learner.observe(CONFIGS[0], 3.0)  # much faster than the prior
        after = learner.qos_estimate(CONFIGS[1])
        assert after > before

    def test_direct_observation_unchanged_by_propagation(self):
        """Eqn. 7 semantics for the observed config are preserved."""
        learner = make_learner()
        learner.observe(CONFIGS[1], 2.5)
        assert learner.qos_estimate(CONFIGS[1]) == 2.5

    def test_propagation_respects_prior_shape(self):
        """A neighbour with more resources is nudged toward a *larger*
        predicted value than one with fewer."""
        learner = make_learner()
        learner.observe(CONFIGS[2], 2.0)  # 2S/128KB
        small = learner.qos_estimate(CONFIGS[1])   # 2S/64KB
        large = learner.qos_estimate(CONFIGS[3])   # 4S/256KB
        assert large > small

    def test_distance_attenuates(self):
        learner = make_learner(radius=100.0)
        baseline = {c: learner.qos_estimate(c) for c in CONFIGS}
        learner.observe(CONFIGS[0], 10.0)
        near_shift = abs(
            learner.qos_estimate(CONFIGS[1]) - baseline[CONFIGS[1]]
        ) / baseline[CONFIGS[1]]
        far_shift = abs(
            learner.qos_estimate(CONFIGS[4]) - baseline[CONFIGS[4]]
        ) / baseline[CONFIGS[4]]
        assert near_shift > far_shift

    def test_radius_cuts_off(self):
        learner = make_learner(radius=1.0)
        before = learner.qos_estimate(CONFIGS[4])
        learner.observe(CONFIGS[0], 10.0)
        assert learner.qos_estimate(CONFIGS[4]) == before

    def test_well_observed_neighbours_resist_propagation(self):
        learner = make_learner()
        for _ in range(30):
            learner.observe(CONFIGS[1], 1.0)
        learner.observe(CONFIGS[0], 10.0)
        # CONFIGS[1] has 30 direct observations; one propagated guess
        # must barely move it.
        assert learner.qos_estimate(CONFIGS[1]) < 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            make_learner(propagation=1.5)
        with pytest.raises(ValueError):
            make_learner(radius=0.0)

    def test_inherits_phase_bank(self):
        learner = make_learner()
        learner.observe(CONFIGS[1], 5.0)
        learner.on_phase_change(
            1.0, 2.0, signature=(0.3, 0.1, 0.03), anchor_qos=1.0
        )
        assert learner.known_phases == 2
        # Propagation keeps working on the fresh table.
        before = learner.qos_estimate(CONFIGS[1])
        learner.observe(CONFIGS[0], 50.0)
        assert learner.qos_estimate(CONFIGS[1]) > before


class TestColdStartBenefit:
    def test_few_observations_sketch_the_surface(self):
        """After observing only two configurations, the estimates of
        the rest should correlate with a plausible response surface
        better than the untouched prior."""
        true = {
            CONFIGS[0]: 0.5,
            CONFIGS[1]: 0.9,
            CONFIGS[2]: 1.0,
            CONFIGS[3]: 1.7,
            CONFIGS[4]: 2.8,
        }
        smoothing = make_learner()
        smoothing.observe(CONFIGS[0], true[CONFIGS[0]])
        smoothing.observe(CONFIGS[3], true[CONFIGS[3]])

        from repro.runtime.qlearning import SpeedupLearner

        independent = SpeedupLearner(
            configs=CONFIGS, base_config=BASE, base_qos=1.0
        )
        independent.observe(CONFIGS[0], true[CONFIGS[0]])
        independent.observe(CONFIGS[3], true[CONFIGS[3]])

        def error(learner):
            return sum(
                abs(learner.qos_estimate(c) - true[c]) / true[c]
                for c in (CONFIGS[1], CONFIGS[2], CONFIGS[4])
            )

        assert error(smoothing) < error(independent)
