"""The Kalman base-speed estimator and phase-change detector."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.kalman import KalmanEstimator, PhaseChangeDetector


def make_estimator(**overrides):
    defaults = dict(
        initial_base=1.0,
        process_variance=1e-4,
        measurement_variance=1e-3,
    )
    defaults.update(overrides)
    return KalmanEstimator(**defaults)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            KalmanEstimator(initial_base=0)
        with pytest.raises(ValueError):
            KalmanEstimator(initial_base=1, process_variance=0)
        with pytest.raises(ValueError):
            KalmanEstimator(initial_base=1, measurement_variance=0)
        with pytest.raises(ValueError):
            KalmanEstimator(initial_base=1, initial_error_variance=0)

    def test_update_rejects_negative(self):
        estimator = make_estimator()
        with pytest.raises(ValueError):
            estimator.update(-1.0, 1.0)
        with pytest.raises(ValueError):
            estimator.update(1.0, -1.0)

    def test_reset(self):
        estimator = make_estimator()
        estimator.reset(2.5, error_variance=0.1)
        assert estimator.estimate == 2.5
        assert estimator.error_variance == 0.1
        with pytest.raises(ValueError):
            estimator.reset(0.0)


class TestConvergence:
    @settings(max_examples=30, deadline=None)
    @given(
        true_base=st.floats(min_value=0.1, max_value=5.0),
        speedup=st.floats(min_value=0.5, max_value=8.0),
    )
    def test_converges_to_true_base_noiseless(self, true_base, speedup):
        """Property: with q = s*b exactly, the estimate converges to b."""
        estimator = make_estimator(initial_base=1.0)
        for _ in range(200):
            estimator.update(speedup * true_base, speedup)
        assert estimator.estimate == pytest.approx(true_base, rel=0.02)

    def test_converges_under_noise(self):
        rng = random.Random(0)
        true_base = 0.7
        estimator = make_estimator()
        for _ in range(500):
            q = 2.0 * true_base * (1 + rng.gauss(0, 0.02))
            estimator.update(q, 2.0)
        assert estimator.estimate == pytest.approx(true_base, rel=0.05)

    def test_tracks_base_speed_shift(self):
        """A phase change (b doubles) moves the estimate quickly —
        convergence is exponential (Section IV-B)."""
        estimator = make_estimator()
        for _ in range(100):
            estimator.update(2.0 * 0.5, 2.0)
        before = estimator.estimate
        steps = 0
        while abs(estimator.estimate - 1.0) > 0.1 and steps < 50:
            estimator.update(2.0 * 1.0, 2.0)
            steps += 1
        assert steps < 25
        assert estimator.estimate > before

    def test_variance_stays_positive(self):
        estimator = make_estimator()
        for i in range(100):
            estimator.update(1.0 + (i % 3) * 0.01, 1.5)
            assert estimator.error_variance > 0

    def test_gain_and_innovation_exposed(self):
        estimator = make_estimator()
        estimator.update(2.0, 1.0)
        assert estimator.last_gain > 0
        assert estimator.last_innovation == pytest.approx(2.0 - 1.0)

    def test_estimate_never_collapses_to_zero(self):
        estimator = make_estimator()
        for _ in range(100):
            estimator.update(0.0, 5.0)
        assert estimator.estimate > 0

    def test_zero_speedup_leaves_estimate(self):
        """With s = 0 the measurement carries no base-speed information
        (gain is zero)."""
        estimator = make_estimator()
        before = estimator.estimate
        estimator.update(0.5, 0.0)
        assert estimator.estimate == before


class TestPhaseChangeDetector:
    def test_no_detection_when_stable(self):
        estimator = make_estimator()
        detector = PhaseChangeDetector(estimator, threshold=0.2)
        for _ in range(50):
            estimator.update(1.0, 1.0)
            assert detector.observe() is None

    def test_detects_confirmed_shift(self):
        estimator = make_estimator()
        detector = PhaseChangeDetector(estimator, threshold=0.2, confirm=2)
        for _ in range(20):
            estimator.update(1.0, 1.0)
            detector.observe()
        changes = []
        for _ in range(30):
            estimator.update(3.0, 1.0)  # base tripled
            change = detector.observe()
            if change:
                changes.append(change)
        assert len(changes) == 1
        assert changes[0].new_base > changes[0].previous_base
        assert changes[0].magnitude > 0

    def test_single_step_excursion_ignored(self):
        """One outlier is a disturbance, not a phase (confirm=2)."""
        estimator = make_estimator(
            measurement_variance=1e-6, process_variance=1e-2
        )
        detector = PhaseChangeDetector(estimator, threshold=0.2, confirm=2)
        for _ in range(10):
            estimator.update(1.0, 1.0)
            detector.observe()
        estimator.update(5.0, 1.0)  # a page fault, say
        first = detector.observe()
        estimator.update(1.0, 1.0)
        second = detector.observe()
        assert first is None
        # The estimate snapped back before confirmation completed.
        assert second is None

    def test_reference_reanchors_after_detection(self):
        estimator = make_estimator()
        detector = PhaseChangeDetector(estimator, threshold=0.2, confirm=1)
        for _ in range(10):
            estimator.update(1.0, 1.0)
            detector.observe()
        fired = 0
        for _ in range(40):
            estimator.update(4.0, 1.0)
            if detector.observe():
                fired += 1
        assert fired == 1  # one phase change, not one per step

    def test_validation(self):
        estimator = make_estimator()
        with pytest.raises(ValueError):
            PhaseChangeDetector(estimator, threshold=0)
        with pytest.raises(ValueError):
            PhaseChangeDetector(estimator, confirm=0)
