"""The assembled CASH runtime (Algorithm 1) against synthetic plants."""

import random

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import VCoreConfig
from repro.runtime.cash import (
    CASHRuntime,
    LegObservation,
    QoSMeasurement,
    RuntimeDecision,
)

CONFIGS = [
    VCoreConfig(1, 64),
    VCoreConfig(2, 128),
    VCoreConfig(4, 256),
    VCoreConfig(8, 512),
]


def make_runtime(qos_goal=1.5, explore=True, **kwargs):
    return CASHRuntime(
        configs=CONFIGS,
        cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in CONFIGS],
        qos_goal=qos_goal,
        base_config=CONFIGS[0],
        initial_base_qos=0.5,
        explore=explore,
        **kwargs,
    )


class _Plant:
    """A stationary synthetic machine with per-config true QoS."""

    def __init__(self, qos_by_config, noise=0.0, seed=0, signature=(0.3, 0.1, 0.03)):
        self.qos = dict(qos_by_config)
        self.noise = noise
        self.rng = random.Random(seed)
        self.signature = signature

    def run(self, schedule) -> QoSMeasurement:
        total = 0.0
        legs = []
        for entry in schedule.entries:
            q = 0.0 if entry.point.is_idle else self.qos[entry.point.config]
            q *= 1.0 + self.rng.gauss(0.0, self.noise)
            total += max(q, 0.0) * entry.fraction
            legs.append(
                LegObservation(
                    config=entry.point.config,
                    fraction=entry.fraction,
                    qos=max(q, 0.0),
                )
            )
        return QoSMeasurement(
            overall_qos=total, legs=tuple(legs), signature=self.signature
        )


STATIONARY = {
    CONFIGS[0]: 0.6,
    CONFIGS[1]: 1.1,
    CONFIGS[2]: 1.9,
    CONFIGS[3]: 2.6,
}


def run_closed_loop(runtime, plant, steps):
    measurement = None
    deliveries = []
    for _ in range(steps):
        decision = runtime.step(measurement)
        measurement = plant.run(decision.schedule)
        deliveries.append(measurement.overall_qos)
    return deliveries


class TestClosedLoopConvergence:
    def test_meets_goal_on_stationary_plant(self):
        runtime = make_runtime(qos_goal=1.5, explore=False)
        plant = _Plant(STATIONARY)
        deliveries = run_closed_loop(runtime, plant, 60)
        tail = deliveries[-20:]
        assert all(q >= 1.5 * 0.97 for q in tail)

    def test_cost_approaches_envelope_optimum(self):
        """After learning, the schedule cost must approach the true
        envelope cost for the goal."""
        from repro.runtime.optimizer import ConfigPoint, lower_envelope_cost

        runtime = make_runtime(qos_goal=1.5, explore=False)
        plant = _Plant(STATIONARY)
        run_closed_loop(runtime, plant, 80)
        true_points = [
            ConfigPoint(
                config=c,
                speedup=STATIONARY[c],
                cost_rate=c.cost_rate(DEFAULT_COST_MODEL),
            )
            for c in CONFIGS
        ]
        optimal_cost, _ = lower_envelope_cost(true_points, 1.5)
        final_cost = runtime.last_schedule.average_cost_rate
        assert final_cost <= optimal_cost * 1.30

    def test_meets_goal_under_noise(self):
        runtime = make_runtime(qos_goal=1.5)
        plant = _Plant(STATIONARY, noise=0.02)
        deliveries = run_closed_loop(runtime, plant, 120)
        tail = deliveries[-40:]
        violations = sum(q < 1.5 * 0.95 for q in tail)
        assert violations <= 4

    def test_unreachable_goal_saturates_at_fastest(self):
        runtime = make_runtime(qos_goal=10.0, explore=False)
        plant = _Plant(STATIONARY)
        run_closed_loop(runtime, plant, 60)
        final = runtime.decisions[-1]
        assert final.schedule.saturated or (
            runtime.last_schedule.average_speedup >= 2.5
        )


class TestPhaseAdaptation:
    def test_adapts_to_base_speed_shift(self):
        """When the plant slows 2x (a phase change), the runtime must
        recover the goal within a handful of intervals."""
        runtime = make_runtime(qos_goal=1.2)
        fast = _Plant(STATIONARY, signature=(0.3, 0.1, 0.03))
        slow = _Plant(
            {c: q * 0.55 for c, q in STATIONARY.items()},
            signature=(0.2, 0.05, 0.08),
        )
        measurement = None
        for _ in range(50):
            decision = runtime.step(measurement)
            measurement = fast.run(decision.schedule)
        recovered_at = None
        for step in range(40):
            decision = runtime.step(measurement)
            measurement = slow.run(decision.schedule)
            if measurement.overall_qos >= 1.2 * 0.97:
                recovered_at = step
                break
        assert recovered_at is not None and recovered_at <= 12

    def test_phase_change_flag_reported(self):
        runtime = make_runtime(qos_goal=1.2)
        fast = _Plant(STATIONARY, signature=(0.3, 0.1, 0.03))
        slow = _Plant(STATIONARY, signature=(0.2, 0.05, 0.08))
        measurement = None
        for _ in range(10):
            measurement = fast.run(runtime.step(measurement).schedule)
        flags = []
        for _ in range(5):
            decision = runtime.step(measurement)
            flags.append(decision.phase_change)
            measurement = slow.run(decision.schedule)
        assert any(flags)

    def test_revisited_phase_recovers_fast(self):
        """Second entry into a known phase should recall its table."""
        runtime = make_runtime(qos_goal=1.2)
        a = _Plant(STATIONARY, signature=(0.3, 0.1, 0.03))
        b = _Plant(
            {c: q * 0.6 for c, q in STATIONARY.items()},
            signature=(0.2, 0.05, 0.08),
        )
        measurement = None
        for plant, steps in ((a, 40), (b, 40), (a, 40)):
            for _ in range(steps):
                decision = runtime.step(measurement)
                measurement = plant.run(decision.schedule)
        # Final re-entry into b: count violating intervals.
        violations = 0
        for step in range(15):
            decision = runtime.step(measurement)
            measurement = b.run(decision.schedule)
            if measurement.overall_qos < 1.2 * 0.95:
                violations += 1
        assert violations <= 3


class TestLocalOptimaEscape:
    def test_escapes_pessimistic_estimates(self):
        """Seed the learner with crushed estimates for every config.
        The UCB saturation path must rediscover the fast ones."""
        runtime = make_runtime(qos_goal=2.0)
        for config in CONFIGS:
            runtime.learner.observe(config, 0.05)
        plant = _Plant(STATIONARY)
        deliveries = run_closed_loop(runtime, plant, 80)
        assert max(deliveries[-20:]) >= 2.0 * 0.95


class TestBookkeeping:
    def test_decisions_recorded(self):
        runtime = make_runtime()
        plant = _Plant(STATIONARY)
        run_closed_loop(runtime, plant, 10)
        assert len(runtime.decisions) == 10
        assert all(isinstance(d, RuntimeDecision) for d in runtime.decisions)

    def test_first_step_without_measurement(self):
        runtime = make_runtime()
        decision = runtime.step(None)
        assert decision.schedule.average_speedup >= 0

    def test_instruction_count_estimate_is_o1(self):
        runtime = make_runtime()
        count = runtime.instruction_count_estimate()
        assert 100 <= count <= 5000
        with pytest.raises(ValueError):
            runtime.instruction_count_estimate(0)

    def test_goal_validation(self):
        with pytest.raises(ValueError):
            make_runtime(qos_goal=0.0)

    def test_measurement_validation(self):
        with pytest.raises(ValueError):
            QoSMeasurement(overall_qos=-1.0)
        with pytest.raises(ValueError):
            LegObservation(config=None, fraction=2.0, qos=0.0)
        with pytest.raises(ValueError):
            LegObservation(config=None, fraction=0.5, qos=-1.0)
