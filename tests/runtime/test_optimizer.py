"""The two-configuration LP schedule (Eqns. 5-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.vcore import VCoreConfig
from repro.runtime.optimizer import (
    ConfigPoint,
    IDLE_POINT,
    LearningOptimizer,
    Schedule,
    ScheduleEntry,
    lower_envelope_cost,
    solve_two_config,
)


def point(slices, kb, speedup, cost):
    return ConfigPoint(
        config=VCoreConfig(slices, kb), speedup=speedup, cost_rate=cost
    )


POINTS = [
    point(1, 64, 1.0, 0.013),
    point(2, 128, 1.8, 0.026),
    point(4, 256, 3.0, 0.052),
    point(8, 512, 4.0, 0.104),
]


class TestConfigPoint:
    def test_efficiency(self):
        assert point(1, 64, 2.0, 0.5).efficiency == pytest.approx(4.0)

    def test_idle_point(self):
        assert IDLE_POINT.is_idle
        assert IDLE_POINT.speedup == 0.0
        assert IDLE_POINT.cost_rate == 0.0
        assert IDLE_POINT.efficiency == 0.0

    def test_free_fast_point_has_infinite_efficiency(self):
        free = ConfigPoint(config=None, speedup=1.0, cost_rate=0.0)
        assert free.efficiency == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            ConfigPoint(config=None, speedup=-1.0, cost_rate=0.0)
        with pytest.raises(ValueError):
            ConfigPoint(config=None, speedup=1.0, cost_rate=-0.1)


class TestScheduleInvariants:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            Schedule(entries=(ScheduleEntry(IDLE_POINT, 0.5),))

    def test_average_speedup_and_cost(self):
        schedule = Schedule(
            entries=(
                ScheduleEntry(POINTS[0], 0.5),
                ScheduleEntry(POINTS[1], 0.5),
            )
        )
        assert schedule.average_speedup == pytest.approx(1.4)
        assert schedule.average_cost_rate == pytest.approx(0.0195)

    def test_active_entries_exclude_idle(self):
        schedule = Schedule(
            entries=(
                ScheduleEntry(POINTS[0], 0.3),
                ScheduleEntry(IDLE_POINT, 0.7),
            )
        )
        assert len(schedule.active_entries) == 1
        assert schedule.configs() == [POINTS[0].config]


class TestSolveTwoConfig:
    def test_zero_target_idles(self):
        schedule = solve_two_config(POINTS, 0.0)
        assert schedule.entries[0].point.is_idle
        assert schedule.average_cost_rate == 0.0

    def test_exact_match_uses_single_config(self):
        schedule = solve_two_config(POINTS, 1.8)
        assert len(schedule.active_entries) == 1
        assert schedule.active_entries[0].point is POINTS[1]

    def test_average_speedup_equals_target(self):
        schedule = solve_two_config(POINTS, 2.4)
        assert schedule.average_speedup == pytest.approx(2.4)

    def test_over_is_cheapest_above(self):
        schedule = solve_two_config(POINTS, 2.4)
        over = schedule.entries[0].point
        assert over is POINTS[2]  # cheapest with s > 2.4

    def test_under_is_most_efficient_below(self):
        # POINTS[1] efficiency ~69.2 beats POINTS[0]'s ~76.9? No:
        # 1.0/.013=76.9 vs 1.8/.026=69.2 — under should be POINTS[0].
        schedule = solve_two_config(POINTS, 2.4)
        under = schedule.entries[1].point
        assert under is POINTS[0]

    def test_saturation_clamps_to_fastest(self):
        schedule = solve_two_config(POINTS, 99.0)
        assert schedule.saturated
        assert schedule.entries[0].point is POINTS[3]

    def test_below_all_mixes_with_idle(self):
        schedule = solve_two_config(POINTS, 0.5)
        assert schedule.entries[0].point is POINTS[0]
        assert schedule.entries[1].point.is_idle
        assert schedule.average_speedup == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_two_config([], 1.0)
        with pytest.raises(ValueError):
            solve_two_config(POINTS, -1.0)

    @settings(max_examples=80, deadline=None)
    @given(target=st.floats(min_value=0.01, max_value=3.99))
    def test_schedule_always_meets_target(self, target):
        """Property: any reachable target is met exactly on average."""
        schedule = solve_two_config(POINTS, target)
        assert not schedule.saturated
        assert schedule.average_speedup == pytest.approx(target, rel=1e-9)


class TestLowerEnvelope:
    def test_exact_target_on_a_point(self):
        cost, schedule = lower_envelope_cost(POINTS, 1.8)
        assert cost <= 0.026 + 1e-12
        assert schedule.average_speedup == pytest.approx(1.8)

    def test_cost_never_exceeds_any_single_feasible_config(self):
        for target in (0.5, 1.0, 2.0, 3.5):
            cost, _ = lower_envelope_cost(POINTS, target)
            for p in POINTS:
                if p.speedup >= target:
                    assert cost <= p.cost_rate + 1e-12

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            lower_envelope_cost(POINTS, 10.0)

    def test_envelope_skips_dominated_points(self):
        """A config that is slower AND pricier than a mix never
        appears on the hull."""
        dominated = point(3, 8192, 1.5, 0.9)
        cost_with, _ = lower_envelope_cost(POINTS + [dominated], 1.5)
        cost_without, _ = lower_envelope_cost(POINTS, 1.5)
        assert cost_with == pytest.approx(cost_without)

    def test_schedule_averages_match(self):
        cost, schedule = lower_envelope_cost(POINTS, 2.2)
        assert schedule.average_speedup == pytest.approx(2.2)
        assert schedule.average_cost_rate == pytest.approx(cost)

    @settings(max_examples=60, deadline=None)
    @given(
        speeds=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=10
        ),
        target_frac=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_envelope_never_beaten_by_two_point_mixes(self, speeds, target_frac):
        """Property: the envelope is the true LP optimum — no pair of
        points (with idle) can average the target more cheaply."""
        points = [
            ConfigPoint(config=None, speedup=s, cost_rate=0.01 * s * s + 0.005)
            for s in speeds
        ]
        target = target_frac * max(speeds)
        cost, _ = lower_envelope_cost(points, target)
        candidates = points + [IDLE_POINT]
        for a in candidates:
            for b in candidates:
                lo, hi = sorted((a, b), key=lambda p: p.speedup)
                if not lo.speedup <= target <= hi.speedup:
                    continue
                span = hi.speedup - lo.speedup
                w = 0.0 if span == 0 else (target - lo.speedup) / span
                mix_cost = w * hi.cost_rate + (1 - w) * lo.cost_rate
                assert cost <= mix_cost + 1e-9

    def test_zero_target_is_free(self):
        cost, schedule = lower_envelope_cost(POINTS, 0.0)
        assert cost == 0.0


class TestLearningOptimizer:
    def _optimizer(self):
        configs = [p.config for p in POINTS]
        return LearningOptimizer(
            configs=configs, cost_rates=[p.cost_rate for p in POINTS]
        )

    def test_points_require_all_estimates(self):
        optimizer = self._optimizer()
        with pytest.raises(KeyError):
            optimizer.points({POINTS[0].config: 1.0})

    def test_schedule_uses_estimates(self):
        optimizer = self._optimizer()
        speedups = {p.config: p.speedup for p in POINTS}
        schedule = optimizer.schedule(speedups, 2.4)
        assert schedule.average_speedup == pytest.approx(2.4)

    def test_optimal_cost_matches_envelope(self):
        optimizer = self._optimizer()
        speedups = {p.config: p.speedup for p in POINTS}
        cost, _ = optimizer.optimal_cost(speedups, 2.0)
        expected, _ = lower_envelope_cost(POINTS, 2.0)
        assert cost == pytest.approx(expected)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LearningOptimizer(configs=[POINTS[0].config], cost_rates=[1, 2])
        with pytest.raises(ValueError):
            LearningOptimizer(configs=[], cost_rates=[])
