"""Cross-layer integration: the co-design running end to end.

These tests wire layers together the way the real system would be
wired: the CASH runtime controlling a virtual core whose performance
comes from the *cycle-level* pipeline (not the analytic model it was
tuned against), and runtime decisions driving fabric reallocation,
reconfiguration accounting, and register-state preservation.
"""

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.fabric import Fabric
from repro.arch.reconfig import ReconfigCostModel, ReconfigEngine
from repro.arch.registers import DistributedRegisterFile
from repro.arch.vcore import VCoreConfig
from repro.runtime.cash import CASHRuntime, LegObservation, QoSMeasurement
from repro.sim.pipeline import MultiSlicePipeline
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase

COMPUTE_PHASE = Phase(
    name="integration.compute",
    instructions_m=1.0,
    ilp=4.0,
    mem_refs_per_inst=0.2,
    l1_miss_rate=0.03,
    working_set=((128, 0.9),),
    mlp=2.5,
    comm_penalty=0.03,
)

MEMORY_PHASE = Phase(
    name="integration.memory",
    instructions_m=1.0,
    ilp=2.0,
    mem_refs_per_inst=0.4,
    l1_miss_rate=0.5,
    working_set=((256, 0.9),),
    mlp=3.0,
    comm_penalty=0.08,
)

# A compact menu keeps the cycle-tier closed loop fast.
MENU = [
    VCoreConfig(1, 64),
    VCoreConfig(2, 128),
    VCoreConfig(2, 256),
    VCoreConfig(4, 256),
    VCoreConfig(4, 512),
]


class CycleTierMachine:
    """A virtual core whose QoS is measured by the pipeline model."""

    def __init__(self, phase: Phase, instructions: int = 1200) -> None:
        self.phase = phase
        self.instructions = instructions
        self._cache = {}
        self._trace_seed = 0

    def measure(self, config: VCoreConfig) -> float:
        key = (self.phase.name, config)
        if key not in self._cache:
            trace = TraceGenerator(
                self.phase, seed=self._trace_seed
            ).generate(self.instructions)
            result = MultiSlicePipeline(config).run(trace)
            self._cache[key] = result.ipc
        return self._cache[key]

    def run_schedule(self, schedule) -> QoSMeasurement:
        total = 0.0
        legs = []
        for entry in schedule.entries:
            qos = 0.0 if entry.point.is_idle else self.measure(entry.point.config)
            total += qos * entry.fraction
            legs.append(
                LegObservation(
                    config=entry.point.config,
                    fraction=entry.fraction,
                    qos=qos,
                )
            )
        signature = (
            self.phase.mem_refs_per_inst,
            self.phase.l1_miss_rate,
            self.phase.mispredict_rate,
        )
        return QoSMeasurement(overall_qos=total, legs=tuple(legs),
                              signature=signature)


class TestRuntimeOnCycleTier:
    @pytest.fixture(scope="class")
    def machines(self):
        return {
            "compute": CycleTierMachine(COMPUTE_PHASE),
            "memory": CycleTierMachine(MEMORY_PHASE),
        }

    def _runtime(self, goal):
        return CASHRuntime(
            configs=MENU,
            cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in MENU],
            qos_goal=goal,
            base_config=MENU[0],
            initial_base_qos=goal / 2,
            explore=False,
        )

    def test_converges_to_goal_measured_by_the_pipeline(self, machines):
        machine = machines["compute"]
        best = max(machine.measure(c) for c in MENU)
        goal = best * 0.6
        runtime = self._runtime(goal)
        measurement = None
        deliveries = []
        for _ in range(30):
            decision = runtime.step(measurement)
            measurement = machine.run_schedule(decision.schedule)
            deliveries.append(measurement.overall_qos)
        assert all(q >= goal * 0.95 for q in deliveries[-8:])

    def test_settles_cheaper_than_racing_the_best_config(self, machines):
        machine = machines["compute"]
        best_config = max(MENU, key=machine.measure)
        goal = machine.measure(best_config) * 0.6
        runtime = self._runtime(goal)
        measurement = None
        for _ in range(30):
            decision = runtime.step(measurement)
            measurement = machine.run_schedule(decision.schedule)
        final_cost = runtime.last_schedule.average_cost_rate
        assert final_cost < best_config.cost_rate(DEFAULT_COST_MODEL)

    def test_adapts_when_the_cycle_tier_changes_phase(self, machines):
        compute, memory = machines["compute"], machines["memory"]
        goal = min(
            max(compute.measure(c) for c in MENU),
            max(memory.measure(c) for c in MENU),
        ) * 0.6
        runtime = self._runtime(goal)
        measurement = None
        for _ in range(25):
            decision = runtime.step(measurement)
            measurement = compute.run_schedule(decision.schedule)
        recovered = None
        for step in range(25):
            decision = runtime.step(measurement)
            measurement = memory.run_schedule(decision.schedule)
            if measurement.overall_qos >= goal * 0.95:
                recovered = step
                break
        assert recovered is not None and recovered <= 12


class TestRuntimeDrivesTheFabric:
    def test_decisions_apply_to_fabric_and_preserve_registers(self):
        """Follow a runtime's decisions with real fabric reallocation,
        reconfiguration accounting and register-file state."""
        fabric = Fabric(width=12, height=12)
        registers = DistributedRegisterFile(slice_ids=range(4))
        for gr in range(24):
            registers.write(gr % 4, gr, gr * 3)
        engine = ReconfigEngine(
            initial=VCoreConfig(4, 256),
            cost_model=ReconfigCostModel(dirty_fraction=0.25),
            register_file=registers,
        )
        fabric.allocate(1, engine.current)

        runtime = CASHRuntime(
            configs=MENU,
            cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in MENU],
            qos_goal=1.0,
            base_config=MENU[0],
            initial_base_qos=0.5,
            explore=False,
        )
        true_qos = {
            MENU[0]: 0.5, MENU[1]: 0.9, MENU[2]: 1.1,
            MENU[3]: 1.6, MENU[4]: 1.9,
        }
        measurement = None
        overheads = []
        for _ in range(20):
            decision = runtime.step(measurement)
            active = decision.schedule.active_entries
            peak = max(
                (e.point.config for e in active),
                key=lambda c: c.tiles,
                default=engine.current,
            )
            if peak != engine.current:
                # Registers only track Slice membership; resize both.
                result = engine.apply(peak)
                overheads.append(result.overhead_cycles)
                fabric.reallocate(1, peak)
            total = sum(
                true_qos[e.point.config] * e.fraction
                for e in active
            )
            legs = tuple(
                LegObservation(e.point.config, e.fraction,
                               true_qos[e.point.config])
                for e in active
            )
            measurement = QoSMeasurement(
                overall_qos=total, legs=legs, signature=(0.3, 0.1, 0.03)
            )

        # The fabric allocation matches the engine's configuration.
        assert fabric.allocation(1).config == engine.current
        # Register state survived every resize.
        assert registers.architectural_state() == {
            gr: gr * 3 for gr in range(24)
        }
        # Reconfiguration overheads were charged and bounded.
        assert engine.total_overhead_cycles == sum(overheads)
        assert all(0 < cycles <= 8192 for cycles in overheads)
