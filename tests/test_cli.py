"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_figure_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--app", "x264"])
        assert args.allocator == "cash"
        assert args.intervals == 1000


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "x264" in out and "cash" in out and "fig10" in out

    def test_run(self, capsys):
        code = main(
            ["run", "--app", "hmmer", "--allocator", "optimal",
             "--intervals", "40"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hmmer / Optimal" in out
        assert "$" in out

    def test_figure_fig1(self, capsys):
        assert main(["figure", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "phase 10" in out

    def test_figure_tab3_small(self, capsys):
        assert main(["figure", "tab3", "--intervals", "40"]) == 0
        out = capsys.readouterr().out
        assert "Ratio to Optimal" in out
        assert "geomean" in out

    def test_figure_fig9_small(self, capsys):
        assert main(["figure", "fig9", "--intervals", "24"]) == 0
        out = capsys.readouterr().out
        assert "Mcycles" in out

    def test_figure_tiers_small(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # BENCH_CYCLE.json lands here
        assert main(["figure", "tiers", "--intervals", "300", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "err %" in out
        assert "mean |err|" in out
        assert "tier cells" in out
        assert (tmp_path / "BENCH_CYCLE.json").exists()

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        out = capsys.readouterr().out
        assert "Slice expansion" in out
        assert "runtime iteration" in out

    def test_export_fig1(self, tmp_path, capsys):
        code = main(["export", "--outdir", str(tmp_path), "--name", "fig1"])
        assert code == 0
        files = list(tmp_path.glob("fig1_*.tsv"))
        assert len(files) == 11  # 10 phases + summary


class TestCacheCommands:
    @pytest.fixture(autouse=True)
    def pristine_store(self):
        from repro import cacheconf
        from repro.sim import optstore
        from repro.sim.optables import cache_clear

        yield
        cache_clear()
        optstore.destroy()
        cacheconf.set_cache_dir(None)

    def test_cache_info_is_json(self, capsys):
        import json

        assert main(["cache", "info"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"l1", "local", "fleet", "shm", "disk"}

    def test_cache_warm_then_clear(self, tmp_path, capsys):
        code = main(
            ["cache", "warm", "--apps", "x264", "--jobs", "1",
             "--cache-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warmed" in out
        assert "optable store:" in out
        assert list(tmp_path.glob("*.npz"))

        code = main(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "removed" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.npz"))

    def test_sweep_prints_store_summary(self, tmp_path, capsys):
        code = main(
            ["sweep", "--apps", "x264", "--allocators", "cash",
             "--seeds", "0", "--intervals", "30", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cache"),
             "--bench-out", str(tmp_path / "BENCH_PERF.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optable store:" in out
        assert "disk cache" in out
        assert (tmp_path / "BENCH_PERF.json").exists()
