"""Trigger / no-trigger fixtures for the numeric hygiene rules."""


class TestFloatEquality:
    def test_eq_against_float_literal_triggers(self, lint_source):
        findings = lint_source(
            """
            def check(value):
                return value == 0.5
            """
        )
        assert [f.rule for f in findings] == ["float-eq"]

    def test_noteq_against_float_literal_triggers(self, lint_source):
        findings = lint_source(
            """
            def check(ratio):
                if ratio != 1.0:
                    return True
                return False
            """
        )
        assert [f.rule for f in findings] == ["float-eq"]

    def test_chained_comparison_triggers_once_per_float_op(self, lint_source):
        findings = lint_source(
            """
            def check(a, b):
                return a == 0.0 or b == 0.0
            """
        )
        assert [f.rule for f in findings] == ["float-eq", "float-eq"]

    def test_pragma_allowlists_sentinel(self, lint_source):
        findings = lint_source(
            """
            def memory_cpi(refs):
                if refs == 0.0:  # lint: allow(float-eq)
                    return 0.0
                return 1.0 / refs
            """
        )
        assert findings == []

    def test_pragma_for_other_rule_does_not_allowlist(self, lint_source):
        findings = lint_source(
            """
            def memory_cpi(refs):
                if refs == 0.0:  # lint: allow(wall-clock)
                    return 0.0
                return 1.0 / refs
            """
        )
        assert [f.rule for f in findings] == ["float-eq"]

    def test_int_literal_equality_is_clean(self, lint_source):
        findings = lint_source(
            """
            def check(count):
                return count == 0
            """
        )
        assert findings == []

    def test_tolerance_guard_is_clean(self, lint_source):
        findings = lint_source(
            """
            def check(value):
                return abs(value - 0.5) <= 1e-9 or value <= 0.0
            """
        )
        assert findings == []


class TestMutableDefault:
    def test_list_default_triggers(self, lint_source):
        findings = lint_source(
            """
            def collect(items=[]):
                return items
            """
        )
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_dict_constructor_default_triggers(self, lint_source):
        findings = lint_source(
            """
            def collect(table=dict()):
                return table
            """
        )
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_kwonly_set_default_triggers(self, lint_source):
        findings = lint_source(
            """
            def collect(*, seen={1, 2}):
                return seen
            """
        )
        assert [f.rule for f in findings] == ["mutable-default"]

    def test_none_default_is_clean(self, lint_source):
        findings = lint_source(
            """
            def collect(items=None):
                if items is None:
                    items = []
                return items
            """
        )
        assert findings == []

    def test_immutable_defaults_are_clean(self, lint_source):
        findings = lint_source(
            """
            def collect(count=3, name="x", pair=(1, 2)):
                return count, name, pair
            """
        )
        assert findings == []


class TestNumpyShadow:
    def test_assignment_to_np_triggers(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def grid():
                np = build_grid()
                return np
            """
        )
        assert [f.rule for f in findings] == ["numpy-shadow"]

    def test_parameter_named_np_triggers(self, lint_source):
        findings = lint_source(
            """
            def scale(np, factor):
                return np * factor
            """
        )
        assert [f.rule for f in findings] == ["numpy-shadow"]

    def test_foreign_import_as_np_triggers(self, lint_source):
        findings = lint_source(
            """
            import numbers as np
            """
        )
        assert [f.rule for f in findings] == ["numpy-shadow"]

    def test_loop_target_np_triggers(self, lint_source):
        findings = lint_source(
            """
            def walk(rows):
                for np in rows:
                    yield np
            """
        )
        assert [f.rule for f in findings] == ["numpy-shadow"]

    def test_canonical_import_is_clean(self, lint_source):
        findings = lint_source(
            """
            import numpy as np
            import numpy

            def grid():
                return np.zeros(3) + numpy.ones(3)
            """
        )
        assert findings == []

    def test_other_names_are_clean(self, lint_source):
        findings = lint_source(
            """
            def scale(matrix, factor):
                result = matrix * factor
                return result
            """
        )
        assert findings == []
