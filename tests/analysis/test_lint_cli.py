"""`repro lint` end to end: the CLI, the baseline gate, the repo tip.

The acceptance scenarios for the suite live here:

* the repo tip lints clean against the committed (empty) baseline;
* injecting an unseeded ``random.random()`` into ``sim/`` makes the
  gate exit nonzero;
* deleting the scalar reference twin of a FAST-gated function makes
  the gate exit nonzero.
"""

import io
import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def run_lint(argv, capsys):
    code = main(["lint", *argv])
    return code, capsys.readouterr().out


class TestRepoTip:
    def test_repo_lints_clean_against_committed_baseline(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code, _ = run_lint([], capsys)
        assert code == 0

    def test_json_findings_match_committed_baseline(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_lint(["--format", "json"], capsys)
        assert code == 0
        report = json.loads(out)
        baseline = json.loads(
            (REPO_ROOT / "LINT_BASELINE.json").read_text()
        )
        report_prints = {f["fingerprint"] for f in report["findings"]}
        baseline_prints = {f["fingerprint"] for f in baseline["findings"]}
        assert report_prints == baseline_prints

    def test_committed_baseline_has_no_stale_entries(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code, _ = run_lint(["--strict-stale"], capsys)
        assert code == 0


def write_module(root, relative, source):
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestGateFiresOnInjectedViolations:
    def test_unseeded_random_in_sim_fails_the_gate(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "unseeded-random" in out

    def test_deleted_scalar_twin_fails_the_gate(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/runtime/solver.py",
            """
            from repro import perf

            def solve(x):
                if perf.FAST:
                    return fast_solve(x)
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "fast-parity" in out

    def test_violation_fails_against_the_committed_baseline_too(
        self, tmp_path, capsys
    ):
        """Same gate semantics when the real baseline is in force: the
        injected finding is not in it, so it is new, so exit 1."""
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, _ = run_lint(
            [
                str(tmp_path),
                "--baseline",
                str(REPO_ROOT / "LINT_BASELINE.json"),
            ],
            capsys,
        )
        assert code == 1

    def test_worker_global_write_fails_the_gate(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/experiments/stats.py",
            """
            _RESULTS = []

            def run_cell(spec):
                _RESULTS.append(spec)
                return spec
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "worker-global-write" in out

    def test_lock_discipline_violation_fails_the_gate(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/tables.py",
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _TABLE = {}

            def publish(key, value):
                _TABLE[key] = value
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "lock-discipline" in out

    def test_cache_mutation_violation_fails_the_gate(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/tables.py",
            """
            _CACHE = {}

            def lookup(key):
                return _CACHE.get(key)

            def poison(key):
                table = lookup(key)
                table.append(None)
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "cache-mutation" in out

    def test_clean_tree_passes(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter(seed):
                return random.Random(seed).random()
            """,
        )
        code, _ = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 0


class TestBaselineWorkflow:
    def test_update_then_gate_only_new_findings(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/legacy.py",
            """
            import random

            def old_jitter():
                return random.random()
            """,
        )
        baseline = tmp_path / "baseline.json"
        code, _ = run_lint(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"],
            capsys,
        )
        assert code == 0
        recorded = json.loads(baseline.read_text())
        assert len(recorded["findings"]) == 1

        # The recorded debt passes the gate...
        code, _ = run_lint([str(tmp_path), "--baseline", str(baseline)], capsys)
        assert code == 0

        # ...but a new violation on top of it does not.
        write_module(
            tmp_path,
            "pkg/sim/fresh.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        code, out = run_lint(
            [str(tmp_path), "--baseline", str(baseline)], capsys
        )
        assert code == 1
        assert "wall-clock" in out
        assert "legacy.py" not in out

    def test_stale_entries_reported_and_strict_stale_fails(
        self, tmp_path, capsys
    ):
        module = write_module(
            tmp_path,
            "pkg/sim/legacy.py",
            """
            import random

            def old_jitter():
                return random.random()
            """,
        )
        baseline = tmp_path / "baseline.json"
        run_lint(
            [str(tmp_path), "--baseline", str(baseline), "--update-baseline"],
            capsys,
        )
        module.write_text("def old_jitter(rng):\n    return rng.random()\n")
        code, out = run_lint(
            [str(tmp_path), "--baseline", str(baseline)], capsys
        )
        assert code == 0
        assert "1 stale" in out
        code, _ = run_lint(
            [str(tmp_path), "--baseline", str(baseline), "--strict-stale"],
            capsys,
        )
        assert code == 1

    def test_malformed_baseline_is_a_usage_error(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 99}')
        (tmp_path / "module.py").write_text("x = 1\n")
        code = main(
            ["lint", str(tmp_path), "--baseline", str(baseline)]
        )
        assert code == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        code = main(["lint", str(tmp_path / "nope")])
        assert code == 2


class TestReportFormats:
    def test_text_report_names_rule_and_location(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [str(tmp_path), "--no-baseline", "--root", str(tmp_path)], capsys
        )
        assert code == 1
        assert "pkg/sim/noise.py:5" in out
        assert "[unseeded-random]" in out

    def test_json_report_is_machine_readable(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 1
        report = json.loads(out)
        (finding,) = report["findings"]
        assert finding["rule"] == "unseeded-random"
        assert finding["path"] == "pkg/sim/noise.py"
        assert finding["fingerprint"]

    def test_parse_error_is_reported_not_fatal(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "parse-error" in out

    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "github",
            ],
            capsys,
        )
        assert code == 1
        annotations = [
            line for line in out.splitlines() if line.startswith("::error ")
        ]
        (annotation,) = annotations
        assert "file=pkg/sim/noise.py" in annotation
        assert "line=5" in annotation
        assert "unseeded-random" in annotation

    def test_github_format_output_is_stable_sorted(self, tmp_path, capsys):
        # Two files, multiple findings each: annotations must arrive in
        # (path, line, column, rule) order, byte-identical across runs.
        write_module(
            tmp_path,
            "pkg/sim/zeta.py",
            """
            import random
            import time

            def jitter():
                return random.random() + time.time()
            """,
        )
        write_module(
            tmp_path,
            "pkg/sim/alpha.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        argv = [
            str(tmp_path),
            "--no-baseline",
            "--root",
            str(tmp_path),
            "--format",
            "github",
        ]
        _, first = run_lint(argv, capsys)
        _, second = run_lint(argv, capsys)
        assert first == second
        annotations = [
            line for line in first.splitlines() if line.startswith("::error ")
        ]
        keys = []
        for line in annotations:
            properties = dict(
                part.split("=", 1)
                for part in line[len("::error ") :].split("::")[0].split(",")
            )
            keys.append(
                (properties["file"], int(properties["line"]), int(properties["col"]))
            )
        assert keys == sorted(keys)
        assert len(annotations) >= 3

    def test_github_format_escapes_newlines_and_commas(self, tmp_path, capsys):
        # A message containing % or newlines must not break the
        # single-line workflow-command syntax.
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "github",
            ],
            capsys,
        )
        assert code == 1
        for line in out.splitlines():
            if line.startswith("::error "):
                assert "\n" not in line
                assert line.count("::") == 2

    def test_github_format_clean_tree_emits_summary_only(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_lint(["--format", "github"], capsys)
        assert code == 0
        assert not [
            line for line in out.splitlines() if line.startswith("::error")
        ]
        assert "0 new finding(s)" in out


class TestRulesListing:
    def test_lists_every_registered_rule_with_scope(self, capsys):
        from repro.analysis import ALL_RULES

        code, out = run_lint(["--rules"], capsys)
        assert code == 0
        for rule in ALL_RULES:
            assert rule.id in out
        assert "hot-set" in out
        assert "repo-wide" in out
        assert "engine-dirs(" in out

    def test_rules_listing_is_sorted_and_describes(self, capsys):
        code, out = run_lint(["--rules"], capsys)
        assert code == 0
        ids = [line.split()[0] for line in out.splitlines() if line.strip()]
        assert ids == sorted(ids)
        hot_line = next(
            line for line in out.splitlines()
            if line.startswith("quadratic-listop")
        )
        assert "hot-set" in hot_line
        assert "pop(0)" in hot_line


class TestHotReportCLI:
    def test_text_report_ranks_hot_functions(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/experiments/stats.py",
            """
            def run_cell(spec):
                pending = list(spec)
                for row in spec:
                    while pending:
                        pending.pop(0)
                return pending
            """,
        )
        code, out = run_lint(
            [str(tmp_path), "--hot-report", "--root", str(tmp_path)], capsys
        )
        assert code == 0
        assert "run_cell" in out
        assert "hot function(s)" in out

    def test_json_report_carries_scores(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/experiments/stats.py",
            """
            def run_cell(spec):
                pending = list(spec)
                for row in spec:
                    while pending:
                        pending.pop(0)
                return pending
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--hot-report",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 0
        report = json.loads(out)
        (entry,) = [
            e
            for e in report["hot_functions"]
            if e["qualname"] == "run_cell"
        ]
        assert entry["loop_depth"] == 2
        assert entry["findings"] >= 1
        assert entry["score"] == entry["loop_depth"] * entry["findings"]
        assert entry["path"] == "pkg/experiments/stats.py"

    def test_repo_tip_hot_report_runs_clean(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_lint(["--hot-report", "--format", "json"], capsys)
        assert code == 0
        report = json.loads(out)
        assert report["hot_functions"]
        assert all(
            entry["findings"] == 0 for entry in report["hot_functions"]
        )


class TestJsonSchemaV2:
    def test_findings_carry_rule_scope(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 1
        report = json.loads(out)
        assert report["version"] == 2
        (finding,) = report["findings"]
        assert finding["scope"].startswith("engine-dirs(")

    def test_pragma_suppressed_counts_are_reported(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()  # lint: allow(unseeded-random)
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 0
        report = json.loads(out)
        assert report["findings"] == []
        assert report["suppressed"] == {"unseeded-random": 1}

    def test_parse_error_findings_get_default_scope(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 1
        report = json.loads(out)
        (finding,) = report["findings"]
        assert finding["rule"] == "parse-error"
        assert finding["scope"] == "repo-wide"


def git(repo, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@example.com",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@example.com",
            "HOME": str(repo),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


class TestChangedOnly:
    def seed_repo(self, tmp_path):
        write_module(
            tmp_path,
            "pkg/sim/committed.py",
            """
            import random

            def old_jitter():
                return random.random()
            """,
        )
        git(tmp_path, "init", "-q")
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-q", "-m", "seed")

    def test_scopes_per_file_rules_to_changed_paths(self, tmp_path, capsys):
        self.seed_repo(tmp_path)
        write_module(
            tmp_path,
            "pkg/sim/fresh.py",
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--changed-only",
                "--root",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 1
        assert "wall-clock" in out
        assert "committed.py" not in out

    def test_program_rules_still_scan_the_whole_tree(self, tmp_path, capsys):
        self.seed_repo(tmp_path)
        # The committed (unchanged) file holds a whole-program
        # violation: a worker entrypoint writing a module global.
        write_module(
            tmp_path,
            "pkg/experiments/stats.py",
            """
            _RESULTS = []

            def run_cell(spec):
                _RESULTS.append(spec)
                return spec
            """,
        )
        git(tmp_path, "add", ".")
        git(tmp_path, "commit", "-q", "-m", "program violation")
        write_module(tmp_path, "pkg/sim/touched.py", "x = 1\n")
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--changed-only",
                "--root",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 1
        assert "worker-global-write" in out
        # ...while the per-file debt in the unchanged file stays out.
        assert "unseeded-random" not in out

    def test_outside_a_git_repo_degrades_to_full_scan(
        self, tmp_path, capsys
    ):
        write_module(
            tmp_path,
            "pkg/sim/noise.py",
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        code, out = run_lint(
            [
                str(tmp_path),
                "--no-baseline",
                "--changed-only",
                "--root",
                str(tmp_path),
            ],
            capsys,
        )
        assert code == 1
        assert "unseeded-random" in out


class TestDataflowCLI:
    def test_update_schema_writes_the_pin_file(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/cloud/service.py",
            """
            from dataclasses import dataclass

            CHECKPOINT_SCHEMA = 1

            @dataclass
            class ServiceAccount:
                tenant_id: int
            """,
        )
        code, out = run_lint(
            [str(tmp_path), "--update-schema", "--root", str(tmp_path)],
            capsys,
        )
        assert code == 0
        assert "pinned 1 surface(s)" in out
        payload = json.loads(
            (tmp_path / "SCHEMA_FINGERPRINTS.json").read_text()
        )
        assert "service-checkpoint" in payload["surfaces"]

    def test_dataflow_report_text_and_json(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/tables.py",
            """
            _TABLE_CACHE = {}

            def lookup(phase, mode):
                key = (phase, mode)
                hit = _TABLE_CACHE.get(key)
                if hit is not None:
                    return hit
                value = (phase, mode * 2)
                _TABLE_CACHE[key] = value
                return value
            """,
        )
        code, out = run_lint(
            [str(tmp_path), "--dataflow-report", "--root", str(tmp_path)],
            capsys,
        )
        assert code == 0
        assert "caches (1):" in out
        assert "_TABLE_CACHE" in out
        code, out = run_lint(
            [
                str(tmp_path),
                "--dataflow-report",
                "--root",
                str(tmp_path),
                "--format",
                "json",
            ],
            capsys,
        )
        assert code == 0
        report = json.loads(out)
        (cache,) = report["caches"]
        assert cache["missing"] == []

    def test_repo_tip_dataflow_report_is_clean_json(
        self, monkeypatch, capsys
    ):
        monkeypatch.chdir(REPO_ROOT)
        code, out = run_lint(
            ["--dataflow-report", "--format", "json"], capsys
        )
        assert code == 0
        report = json.loads(out)
        assert all(row["missing"] == [] for row in report["caches"])
        assert report["schema"]


class TestHistoricalRegressionsFailTheGate:
    """The PR 3 / PR 4 performance regressions, replayed via the CLI."""

    def test_pr3_pop0_arrival_drain_fails(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/cloud/provider.py",
            """
            class CloudProvider:
                def run(self, horizon):
                    arrivals = sorted(self.pending)
                    for interval in range(horizon):
                        while arrivals and arrivals[0] <= interval:
                            tenant = arrivals.pop(0)
                            self.admit(tenant)

                def admit(self, tenant):
                    return tenant
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "quadratic-listop" in out

    def test_pr4_per_cycle_sorted_scan_fails(self, tmp_path, capsys):
        write_module(
            tmp_path,
            "pkg/sim/pipeline.py",
            """
            class MultiSlicePipeline:
                def _run_event_driven(self, trace):
                    cycle = 0
                    window = list(trace)
                    while window:
                        for op in sorted(window):
                            if op <= cycle:
                                window.remove(op)
                        cycle += 1
                    return cycle
            """,
        )
        code, out = run_lint([str(tmp_path), "--no-baseline"], capsys)
        assert code == 1
        assert "loop-invariant" in out
