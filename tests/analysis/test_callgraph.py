"""Unit tests for the AST call graph + effect summaries."""

import textwrap

from repro.analysis.callgraph import (
    ProgramGraph,
    analyze_module,
    module_dotted,
    shared_graph,
)
from repro.analysis.core import FileContext


def module(path, source):
    return FileContext(path, textwrap.dedent(source))


class TestModuleDotted:
    def test_src_prefix_dropped(self):
        assert module_dotted("src/repro/sim/optables.py") == "repro.sim.optables"

    def test_init_names_the_package(self):
        assert module_dotted("src/repro/analysis/__init__.py") == "repro.analysis"

    def test_plain_tree(self):
        assert module_dotted("pkg/sim/tables.py") == "pkg.sim.tables"


class TestGlobalClassification:
    def test_containers_locks_caches_and_rebounds(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                import threading
                from collections import OrderedDict

                _LOCK = threading.Lock()
                _TABLE_CACHE = OrderedDict()
                _LOG = []
                _HITS = 0
                _LIMIT = 4096

                def bump():
                    global _HITS
                    _HITS += 1
                """,
            )
        )
        assert info.globals["_LOCK"].is_lock
        assert not info.globals["_LOCK"].shared_mutable
        assert info.globals["_TABLE_CACHE"].is_cache
        assert info.globals["_TABLE_CACHE"].mutable
        assert info.globals["_LOG"].mutable
        assert info.globals["_HITS"].rebound
        assert info.globals["_HITS"].shared_mutable
        assert not info.globals["_LIMIT"].shared_mutable
        assert info.lock_names == {"_LOCK"}

    def test_frozen_dataclasses_recorded(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Point:
                    x: float

                @dataclass
                class Mutable:
                    x: float
                """,
            )
        )
        assert info.frozen_classes == {"Point"}
        assert info.classes == {"Point", "Mutable"}


class TestEffects:
    def test_write_synchronization_detected(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                import threading

                _LOCK = threading.Lock()
                _TABLE = {}

                def locked(key, value):
                    with _LOCK:
                        _TABLE[key] = value

                def unlocked(key, value):
                    _TABLE[key] = value
                """,
            )
        )
        locked = info.functions["src/repro/sim/demo.py::locked"]
        unlocked = info.functions["src/repro/sim/demo.py::unlocked"]
        assert all(e.synchronized for e in locked.effects)
        assert any(
            e.write and not e.synchronized for e in unlocked.effects
        )

    def test_local_shadowing_is_not_a_global_effect(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                _TABLE = {}

                def scratch():
                    _TABLE = {}
                    _TABLE["k"] = 1
                    return _TABLE
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::scratch"]
        assert summary.effects == []

    def test_mutator_method_on_global_is_a_write(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                _LOG = []

                def note(x):
                    _LOG.append(x)
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::note"]
        # The mutator call is a write; the name load inside it is also
        # recorded as a read (rules dedup per site as needed).
        assert ("_LOG", True) in [
            (e.name, e.write) for e in summary.effects
        ]

    def test_fast_branch_detected(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return x + 1
                    return x + 1

                def plain(x):
                    return x
                """,
            )
        )
        assert info.functions[
            "src/repro/sim/demo.py::kernel"
        ].has_fast_branch
        assert not info.functions[
            "src/repro/sim/demo.py::plain"
        ].has_fast_branch


class TestStoreIdioms:
    """Conventions the tiered operating-point store relies on."""

    def test_lock_named_none_slot_classified_as_lock(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                _CREATE_LOCK = None
                _TABLE = {}
                """,
            )
        )
        assert info.globals["_CREATE_LOCK"].is_lock
        assert not info.globals["_CREATE_LOCK"].shared_mutable
        assert info.lock_names == {"_CREATE_LOCK"}

    def test_setflags_write_false_records_a_seal(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                _CACHE = {}

                def publish(key, values):
                    view = values.copy()
                    view.setflags(write=False)
                    _CACHE[key] = view
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::publish"]
        assert "view" in summary.sealed_names

    def test_setflags_write_true_is_not_a_seal(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                _CACHE = {}

                def thaw(key, values):
                    values.setflags(write=True)
                    _CACHE[key] = values
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::thaw"]
        assert summary.sealed_names == {}

    def test_locked_suffix_assumes_lock_and_records_call_sites(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                import threading

                _STORE_LOCK = threading.Lock()
                _SEGMENTS = {}

                def _register_locked(name, seg):
                    _SEGMENTS[name] = seg

                def good(name, seg):
                    with _STORE_LOCK:
                        _register_locked(name, seg)

                def bad(name, seg):
                    _register_locked(name, seg)
                """,
            )
        )
        helper = info.functions["src/repro/sim/demo.py::_register_locked"]
        assert all(effect.synchronized for effect in helper.effects)
        good = info.functions["src/repro/sim/demo.py::good"]
        bad = info.functions["src/repro/sim/demo.py::bad"]
        (good_call,) = good.locked_calls
        (bad_call,) = bad.locked_calls
        assert good_call.name == "_register_locked"
        assert good_call.synchronized
        assert not bad_call.synchronized


class TestGraph:
    def test_cross_module_reachability(self):
        graph = ProgramGraph.build(
            [
                module(
                    "src/repro/experiments/stats.py",
                    """
                    from repro.sim.tables import lookup

                    def run_cell(spec):
                        return lookup(spec)
                    """,
                ),
                module(
                    "src/repro/sim/tables.py",
                    """
                    def lookup(spec):
                        return helper(spec)

                    def helper(spec):
                        return spec

                    def unrelated(spec):
                        return spec
                    """,
                ),
            ]
        )
        origin = graph.reachable_from(
            ["src/repro/experiments/stats.py::run_cell"]
        )
        reached = set(origin)
        assert "src/repro/sim/tables.py::lookup" in reached
        assert "src/repro/sim/tables.py::helper" in reached
        assert "src/repro/sim/tables.py::unrelated" not in reached
        assert all(
            root == "src/repro/experiments/stats.py::run_cell"
            for root in origin.values()
        )

    def test_self_method_calls_resolve(self):
        graph = ProgramGraph.build(
            [
                module(
                    "src/repro/sim/demo.py",
                    """
                    class Engine:
                        def run(self):
                            return self.step()

                        def step(self):
                            return 1
                    """,
                )
            ]
        )
        origin = graph.reachable_from(["src/repro/sim/demo.py::Engine.run"])
        assert "src/repro/sim/demo.py::Engine.step" in origin

    def test_cache_accessor_fixpoint(self):
        graph = ProgramGraph.build(
            [
                module(
                    "src/repro/sim/tables.py",
                    """
                    _CACHE = {}

                    def lookup(key):
                        table = _CACHE.get(key)
                        if table is not None:
                            return table
                        return None

                    def true_points(key):
                        return lookup(key)

                    def fresh(key):
                        return [key]
                    """,
                )
            ]
        )
        accessors = graph.cache_accessors()
        assert "src/repro/sim/tables.py::lookup" in accessors
        assert "src/repro/sim/tables.py::true_points" in accessors
        assert "src/repro/sim/tables.py::fresh" not in accessors

    def test_real_optables_accessors_found(self):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        contexts = []
        for relative in (
            "src/repro/sim/optables.py",
            "src/repro/experiments/harness.py",
        ):
            contexts.append(
                FileContext(
                    relative, (repo / relative).read_text(encoding="utf-8")
                )
            )
        graph = ProgramGraph.build(contexts)
        accessors = graph.cache_accessors()
        assert (
            "src/repro/sim/optables.py::operating_point_table" in accessors
        )


class TestLoopDepthAndScalarRegions:
    def test_loop_depth_counts_nesting_and_comprehensions(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                def flat(xs):
                    return sum(xs)

                def nested(grid):
                    total = 0
                    for row in grid:
                        for x in row:
                            total += x
                    return total

                def comp_in_loop(grid):
                    out = []
                    for row in grid:
                        out.append([x for x in row])
                    return out
                """,
            )
        )
        depths = {
            summary.qualname: summary.loop_depth
            for summary in info.functions.values()
        }
        assert depths == {"flat": 0, "nested": 2, "comp_in_loop": 2}

    def test_loop_depth_ignores_nested_function_frames(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                def outer(xs):
                    def inner(ys):
                        for y in ys:
                            pass
                    return inner(xs)
                """,
            )
        )
        assert info.functions["src/repro/sim/demo.py::outer"].loop_depth == 0
        assert (
            info.functions["src/repro/sim/demo.py::outer.inner"].loop_depth
            == 1
        )

    def test_scalar_only_calls_recorded_for_else_branch(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return fast(x)
                    else:
                        return slow(x)

                def fast(x):
                    return x

                def slow(x):
                    return x
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::kernel"]
        assert "repro.sim.demo::slow" in summary.scalar_only_calls
        assert "repro.sim.demo::fast" not in summary.scalar_only_calls

    def test_scalar_only_calls_recorded_for_fallthrough(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return fast(x)
                    return slow(x)

                def fast(x):
                    return x

                def slow(x):
                    return x
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::kernel"]
        assert "repro.sim.demo::slow" in summary.scalar_only_calls

    def test_call_in_both_regions_is_not_scalar_only(self):
        info = analyze_module(
            module(
                "src/repro/sim/demo.py",
                """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return shared(x) + 1
                    return shared(x)

                def shared(x):
                    return x
                """,
            )
        )
        summary = info.functions["src/repro/sim/demo.py::kernel"]
        assert "repro.sim.demo::shared" not in summary.scalar_only_calls

    def test_reachability_can_skip_scalar_edges(self):
        graph = ProgramGraph.build(
            [
                module(
                    "src/repro/sim/demo.py",
                    """
                    from repro import perf

                    def kernel(x):
                        if perf.FAST:
                            return fast(x)
                        return slow(x)

                    def fast(x):
                        return x

                    def slow(x):
                        return x
                    """,
                )
            ]
        )
        root = "src/repro/sim/demo.py::kernel"
        full = set(graph.reachable_from([root]))
        hot = set(graph.reachable_from([root], follow_scalar_calls=False))
        assert "src/repro/sim/demo.py::slow" in full
        assert "src/repro/sim/demo.py::slow" not in hot
        assert "src/repro/sim/demo.py::fast" in hot


class TestSharedGraphMemo:
    def test_same_context_list_builds_once(self):
        contexts = [
            module(
                "src/repro/sim/demo.py",
                """
                def f(x):
                    return x
                """,
            )
        ]
        first = shared_graph(contexts)
        second = shared_graph(contexts)
        assert first is second

    def test_different_context_list_rebuilds(self):
        source = """
        def f(x):
            return x
        """
        a = [module("src/repro/sim/demo.py", source)]
        b = [module("src/repro/sim/demo.py", source)]
        assert shared_graph(a) is not shared_graph(b)

    def test_class_names_span_modules(self):
        graph = ProgramGraph.build(
            [
                module(
                    "src/repro/sim/demo.py",
                    """
                    class Alpha:
                        pass
                    """,
                ),
                module(
                    "src/repro/arch/other.py",
                    """
                    class Beta:
                        pass
                    """,
                ),
            ]
        )
        assert graph.class_names() == {"Alpha", "Beta"}
