"""The interprocedural dataflow rules: cache-key-incomplete,
rng-stream-shared, seed-derivation, schema-drift.

Every rule gets a trigger case and a no-trigger twin, plus the
injected-regression acceptance tests the issue calls for: strip a key
component from the real optable key helper, hoist the real tenant RNG
out of its keyed factory, and edit a real checkpoint dataclass field
without bumping ``CHECKPOINT_SCHEMA`` — each must fail the gate, and
the unmodified tip must not.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.core import FileContext, check_program, scan_paths
from repro.analysis.dataflow import (
    SCHEMA_SURFACES,
    CacheKeyRule,
    RngStreamRule,
    SchemaDriftRule,
    SeedDerivationRule,
    _surface_structure,
    dataflow_report,
    write_schema_pins,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestCacheKeyIncomplete:
    def test_memo_key_missing_read_param_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}

                def lookup(phase, mode):
                    hit = _TABLE_CACHE.get(phase)
                    if hit is not None:
                        return hit
                    value = (phase, mode * 2)
                    _TABLE_CACHE[phase] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert rules_of(findings) == {"cache-key-incomplete"}
        assert "mode" in findings[0].message
        assert "_TABLE_CACHE" in findings[0].message

    def test_memo_key_covering_all_reads_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}

                def lookup(phase, mode):
                    key = (phase, mode)
                    hit = _TABLE_CACHE.get(key)
                    if hit is not None:
                        return hit
                    value = (phase, mode * 2)
                    _TABLE_CACHE[key] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_key_built_by_helper_is_followed_transitively(
        self, lint_program
    ):
        # The fixpoint maps the key through the helper's return: a
        # helper that folds every parameter keeps the memo clean...
        clean = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}

                def _key(phase, mode):
                    return (phase, mode)

                def lookup(phase, mode):
                    key = _key(phase, mode)
                    hit = _TABLE_CACHE.get(key)
                    if hit is not None:
                        return hit
                    value = (phase, mode * 2)
                    _TABLE_CACHE[key] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert clean == []
        # ...and dropping one from the helper's returned tuple is
        # visible at the memo site, not just at the helper.
        broken = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}

                def _key(phase, mode):
                    return (phase,)

                def lookup(phase, mode):
                    key = _key(phase, mode)
                    hit = _TABLE_CACHE.get(key)
                    if hit is not None:
                        return hit
                    value = (phase, mode * 2)
                    _TABLE_CACHE[key] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert rules_of(broken) == {"cache-key-incomplete"}
        assert "mode" in broken[0].message

    def test_digest_keyed_publish_is_exempt(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/store.py": """
                _VIEW_CACHE = {}

                def attach(digest, values):
                    view = build_view(digest, values)
                    _VIEW_CACHE[digest] = view
                    return wrap(view)

                def build_view(digest, values):
                    return (digest, values)

                def wrap(view):
                    return view
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_memo_reading_mutable_global_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}
                _LIMITS = {}

                def lookup(name):
                    hit = _TABLE_CACHE.get(name)
                    if hit is not None:
                        return hit
                    value = name * _LIMITS.get(name, 1)
                    _TABLE_CACHE[name] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert rules_of(findings) == {"cache-key-incomplete"}
        assert "_LIMITS" in findings[0].message

    def test_mutable_global_folded_into_key_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}
                _LIMITS = {}

                def lookup(name):
                    key = (name, _LIMITS.get(name, 1))
                    hit = _TABLE_CACHE.get(key)
                    if hit is not None:
                        return hit
                    value = name * _LIMITS.get(name, 1)
                    _TABLE_CACHE[key] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_registry_store_with_membership_guard_is_not_a_memo(
        self, lint_program
    ):
        # The fabric-allocation idiom: `key in registry` guard plus a
        # keyed insert is stateful bookkeeping, not memoization.
        findings = lint_program(
            {
                "src/repro/sim/registry.py": """
                _SLOTS = {}

                def claim(slot_id, config):
                    if slot_id in _SLOTS:
                        raise ValueError(slot_id)
                    record = (slot_id, config.width)
                    _SLOTS[slot_id] = record
                    return record
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_lru_cache_reading_mutable_global_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/scales.py": """
                import functools

                _SCALE = []

                @functools.lru_cache(maxsize=None)
                def factor(n):
                    return n * len(_SCALE)
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert rules_of(findings) == {"cache-key-incomplete"}
        assert "_SCALE" in findings[0].message

    def test_lru_cache_over_params_only_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/scales.py": """
                import functools

                SCALES = (1, 2, 4)

                @functools.lru_cache(maxsize=None)
                def factor(n):
                    return n * len(SCALES)
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_hit_counter_update_is_not_an_input(self, lint_program):
        # Read-modify-write counters inside the memo are internal
        # state, not inputs the cached value can go stale against.
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}
                _HITS = 0

                def lookup(phase):
                    global _HITS
                    hit = _TABLE_CACHE.get(phase)
                    if hit is not None:
                        _HITS += 1
                        return hit
                    value = phase * 2
                    _TABLE_CACHE[phase] = value
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []

    def test_pragma_suppresses(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _TABLE_CACHE = {}

                def lookup(phase, mode):
                    hit = _TABLE_CACHE.get(phase)
                    if hit is not None:
                        return hit
                    value = (phase, mode * 2)
                    _TABLE_CACHE[phase] = value  # lint: allow(cache-key-incomplete)
                    return value
                """
            },
            rules=["cache-key-incomplete"],
        )
        assert findings == []


class TestRngStreamShared:
    def test_module_level_stream_read_from_worker_fires(
        self, lint_program
    ):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import random

                _RNG = random.Random(0)

                def run_cell(spec):
                    return spec + _RNG.random()
                """
            },
            rules=["rng-stream-shared"],
        )
        assert rules_of(findings) == {"rng-stream-shared"}
        assert "_RNG" in findings[0].message
        assert "run_cell" in findings[0].message

    def test_per_item_stream_in_worker_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import random

                def run_cell(spec):
                    rng = random.Random(spec.seed)
                    return spec.base + rng.random()
                """
            },
            rules=["rng-stream-shared"],
        )
        assert findings == []

    def test_stream_hoisted_past_keyed_factory_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/flows.py": """
                import random

                def _stream(seed, item):
                    return random.Random(seed * 7 + item)

                def build(spec):
                    rng = random.Random(spec.seed)
                    out = []
                    for item in range(10):
                        out.append(_draw(rng, item))
                    return out

                def _draw(rng, item):
                    return rng.random() + item
                """
            },
            rules=["rng-stream-shared"],
        )
        assert rules_of(findings) == {"rng-stream-shared"}
        assert "rng" in findings[0].message
        assert "keyed factory" in findings[0].message

    def test_factory_call_per_item_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/flows.py": """
                import random

                def _stream(seed, item):
                    return random.Random(seed * 7 + item)

                def build(spec):
                    out = []
                    for item in range(10):
                        out.append(_draw(_stream(spec.seed, item), item))
                    return out

                def _draw(rng, item):
                    return rng.random() + item
                """
            },
            rules=["rng-stream-shared"],
        )
        assert findings == []

    def test_sequential_stream_without_factory_is_legal(self, lint_program):
        # The harness idiom: one sequential stream threaded through the
        # interval loop is fine in modules that never key streams.
        findings = lint_program(
            {
                "src/repro/cloud/flows.py": """
                import random

                def build(spec):
                    rng = random.Random(spec.seed)
                    out = []
                    for item in range(10):
                        out.append(_draw(rng, item))
                    return out

                def _draw(rng, item):
                    return rng.random() + item
                """
            },
            rules=["rng-stream-shared"],
        )
        assert findings == []

    def test_stream_crossing_fast_twin_boundary_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/gen.py": """
                import random
                from repro import perf

                def gen(seed):
                    if perf.FAST:
                        rng = random.Random(seed)
                        values = [rng.random() for _ in range(4)]
                    else:
                        values = gen_reference(seed)
                    return finalize(rng, values)

                def gen_reference(seed):
                    return [0.0] * 4

                def finalize(rng, values):
                    return values
                """
            },
            rules=["rng-stream-shared"],
        )
        assert rules_of(findings) == {"rng-stream-shared"}
        assert "perf.FAST" in findings[0].message

    def test_stream_scoped_to_its_twin_region_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/gen.py": """
                import random
                from repro import perf

                def gen(seed):
                    if perf.FAST:
                        rng = random.Random(seed)
                        values = [rng.random() for _ in range(4)]
                    else:
                        values = gen_reference(seed)
                    return values

                def gen_reference(seed):
                    return [0.0] * 4
                """
            },
            rules=["rng-stream-shared"],
        )
        assert findings == []


class TestSeedDerivation:
    def test_module_counter_seed_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/streams.py": """
                import random

                _COUNTER = 0

                def next_stream():
                    global _COUNTER
                    _COUNTER += 1
                    return random.Random(_COUNTER)
                """
            },
            rules=["seed-derivation"],
        )
        assert rules_of(findings) == {"seed-derivation"}
        assert "_COUNTER" in findings[0].message

    def test_loop_index_only_seed_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/streams.py": """
                import random

                def streams(n):
                    out = []
                    for i in range(n):
                        out.append(random.Random(i))
                    return out
                """
            },
            rules=["seed-derivation"],
        )
        assert rules_of(findings) == {"seed-derivation"}
        assert "loop" in findings[0].message

    def test_spec_seed_mixed_with_index_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/streams.py": """
                import random

                def streams(spec, n):
                    out = []
                    for i in range(n):
                        out.append(random.Random(spec.seed * 1000003 + i))
                    return out
                """
            },
            rules=["seed-derivation"],
        )
        assert findings == []

    def test_constant_seed_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/streams.py": """
                import random

                def baseline_stream():
                    return random.Random(0)
                """
            },
            rules=["seed-derivation"],
        )
        assert findings == []

    def test_rule_is_scoped_to_engine_and_experiment_dirs(
        self, lint_program
    ):
        findings = lint_program(
            {
                "src/repro/analysisutil/streams.py": """
                import random

                def streams(n):
                    return [random.Random(i) for i in range(n)]
                """
            },
            rules=["seed-derivation"],
        )
        assert findings == []


SERVICE_SRC = """
from dataclasses import dataclass

CHECKPOINT_SCHEMA = 1

@dataclass
class ServiceAccount:
    tenant_id: int
    cost: float

class ServiceEngine:
    def __init__(self):
        self.clock = 0
        self.accounts = {}
"""


def service_contexts(source=SERVICE_SRC):
    return [FileContext("src/repro/cloud/service.py", source)]


class TestSchemaDrift:
    def pinned_rule(self, tmp_path, contexts):
        pin = tmp_path / "SCHEMA_FINGERPRINTS.json"
        write_schema_pins(contexts, pin)
        rule = SchemaDriftRule()
        rule.pin_path = pin
        return rule

    def test_unpinned_surface_fires(self, tmp_path):
        rule = SchemaDriftRule()
        rule.pin_path = tmp_path / "SCHEMA_FINGERPRINTS.json"
        findings = check_program(service_contexts(), [rule])
        assert rules_of(findings) == {"schema-drift"}
        assert "no pinned fingerprint" in findings[0].message

    def test_pinned_surface_is_clean(self, tmp_path):
        contexts = service_contexts()
        rule = self.pinned_rule(tmp_path, contexts)
        assert check_program(contexts, [rule]) == []

    def test_field_change_without_version_bump_fires(self, tmp_path):
        rule = self.pinned_rule(tmp_path, service_contexts())
        changed = service_contexts(
            SERVICE_SRC.replace(
                "cost: float", "cost: float\n    shard_hint: int"
            )
        )
        findings = check_program(changed, [rule])
        assert rules_of(findings) == {"schema-drift"}
        assert "without bumping CHECKPOINT_SCHEMA" in findings[0].message
        assert "shard_hint" in findings[0].message

    def test_field_change_with_bump_still_requires_repin(self, tmp_path):
        rule = self.pinned_rule(tmp_path, service_contexts())
        changed = service_contexts(
            SERVICE_SRC.replace(
                "cost: float", "cost: float\n    shard_hint: int"
            ).replace("CHECKPOINT_SCHEMA = 1", "CHECKPOINT_SCHEMA = 2")
        )
        findings = check_program(changed, [rule])
        assert rules_of(findings) == {"schema-drift"}
        assert "refresh" in findings[0].message

    def test_repin_after_bump_is_clean(self, tmp_path):
        rule = self.pinned_rule(tmp_path, service_contexts())
        changed = service_contexts(
            SERVICE_SRC.replace(
                "cost: float", "cost: float\n    shard_hint: int"
            ).replace("CHECKPOINT_SCHEMA = 1", "CHECKPOINT_SCHEMA = 2")
        )
        write_schema_pins(changed, rule.pin_path)
        assert check_program(changed, [rule]) == []

    def test_absent_surfaces_keep_partial_scans_quiet(self, tmp_path):
        rule = SchemaDriftRule()
        rule.pin_path = tmp_path / "SCHEMA_FINGERPRINTS.json"
        contexts = [FileContext("src/repro/sim/other.py", "x = 1\n")]
        assert check_program(contexts, [rule]) == []


def real_context(relative, transform=None):
    source = (REPO_ROOT / relative).read_text(encoding="utf-8")
    if transform is not None:
        changed = transform(source)
        assert changed != source, "transform matched nothing"
        source = changed
    return FileContext(relative, source)


class TestInjectedRegressions:
    """The acceptance scenarios, replayed on the real engine sources."""

    def test_stripping_cost_model_from_optable_key_fires(self):
        contexts = [
            real_context(
                "src/repro/sim/optables.py",
                lambda src: src.replace(
                    "return (phase, model, space.slice_counts, "
                    "space.l2_sizes_kb, cost_model)",
                    "return (phase, model, space.slice_counts, "
                    "space.l2_sizes_kb)",
                ),
            )
        ]
        findings = check_program(contexts, [CacheKeyRule()])
        assert rules_of(findings) == {"cache-key-incomplete"}
        assert any("cost_model" in f.message for f in findings)

    def test_unmodified_optables_is_clean(self):
        contexts = [real_context("src/repro/sim/optables.py")]
        assert check_program(contexts, [CacheKeyRule()]) == []

    def test_hoisting_tenant_stream_out_of_factory_fires(self):
        contexts = [
            real_context(
                "src/repro/cloud/traffic.py",
                lambda src: src.replace(
                    "_tenant_stream(spec.seed, tenant_id),",
                    "fleet,",
                ),
            )
        ]
        findings = check_program(contexts, [RngStreamRule()])
        assert rules_of(findings) == {"rng-stream-shared"}
        assert any("fleet" in f.message for f in findings)

    def test_unmodified_traffic_is_clean(self):
        contexts = [real_context("src/repro/cloud/traffic.py")]
        assert check_program(contexts, [RngStreamRule()]) == []

    def test_checkpoint_field_edit_without_bump_fires(self):
        rule = SchemaDriftRule()
        rule.pin_path = REPO_ROOT / "SCHEMA_FINGERPRINTS.json"
        contexts = [
            real_context(
                "src/repro/cloud/service.py",
                lambda src: src.replace(
                    "    tenant_id: int",
                    "    tenant_id: int\n    shard_hint: int = 0",
                    1,
                ),
            )
        ]
        findings = check_program(contexts, [rule])
        assert rules_of(findings) == {"schema-drift"}
        assert any(
            "without bumping CHECKPOINT_SCHEMA" in f.message
            for f in findings
        )

    def test_unmodified_service_matches_committed_pins(self):
        rule = SchemaDriftRule()
        rule.pin_path = REPO_ROOT / "SCHEMA_FINGERPRINTS.json"
        contexts = [real_context("src/repro/cloud/service.py")]
        assert check_program(contexts, [rule]) == []


class TestDataflowReport:
    def test_report_tables_carry_key_and_seed_evidence(self):
        contexts = [
            FileContext(
                "src/repro/sim/tables.py",
                "_TABLE_CACHE = {}\n"
                "\n"
                "def lookup(phase, mode):\n"
                "    key = (phase, mode)\n"
                "    hit = _TABLE_CACHE.get(key)\n"
                "    if hit is not None:\n"
                "        return hit\n"
                "    value = (phase, mode * 2)\n"
                "    _TABLE_CACHE[key] = value\n"
                "    return value\n",
            ),
            FileContext(
                "src/repro/cloud/streams.py",
                "import random\n"
                "\n"
                "def stream(spec, item):\n"
                "    return random.Random(spec.seed * 7 + item)\n",
            ),
        ]
        report = dataflow_report(contexts)
        (cache,) = report["caches"]
        assert cache["function"] == "lookup"
        assert cache["key"] == ["mode", "phase"]
        assert cache["reads"] == ["phase", "mode"]
        assert cache["missing"] == []
        (stream,) = report["streams"]
        assert stream["keyed"] is True
        assert "spec.seed" in stream["seed"]
        assert json.dumps(report)  # JSON-serializable for the artifact

    def test_npz_surface_sees_dict_splat_arrays(self):
        # The store passes its data arrays to np.savez through a
        # **arrays splat (annotated dict literal + keyed insert), not
        # literal keywords; the fingerprint must still cover them.
        context = FileContext(
            "src/repro/sim/optstore.py",
            "import numpy as np\n"
            "from typing import Dict\n"
            "\n"
            "def write(sink, speedups, hull):\n"
            "    arrays: Dict[str, object] = {'speedups': speedups}\n"
            "    if hull is not None:\n"
            "        arrays['hull'] = hull\n"
            "    np.savez(sink, digest=np.array('d'),\n"
            "             schema=np.array(1), checksum=np.array('c'),\n"
            "             **arrays)\n",
        )
        (surface,) = [
            s for s in SCHEMA_SURFACES if s.name == "optable-npz"
        ]
        structure = _surface_structure(surface, context)
        assert structure == {
            "arrays": ["checksum", "digest", "hull", "schema", "speedups"]
        }

    def test_repo_tip_report_has_no_missing_inputs(self):
        paths = [REPO_ROOT / "src"]
        from repro.analysis.core import load_contexts

        contexts, errors = load_contexts(paths, root=REPO_ROOT)
        assert errors == []
        report = dataflow_report(contexts)
        assert report["caches"], "expected the real memo sites"
        assert all(row["missing"] == [] for row in report["caches"])
        assert set(report["schema"]) == {
            "service-checkpoint",
            "optable-npz",
            "optable-shm-header",
        }


class TestAcceptance:
    def test_repo_tip_scans_clean_and_fast(self):
        """Tip acceptance + the lint-suite self-performance guard: the
        full-repo scan with every rule stays clean and under 60 s."""
        for rule in ALL_RULES:
            if isinstance(rule, SchemaDriftRule):
                rule.pin_path = REPO_ROOT / "SCHEMA_FINGERPRINTS.json"
        started = time.monotonic()
        findings = scan_paths(
            [REPO_ROOT / "src"], ALL_RULES, root=REPO_ROOT
        )
        elapsed = time.monotonic() - started
        assert findings == []
        assert elapsed < 60.0, f"full-repo lint took {elapsed:.1f}s"
