"""The unit vocabulary and the unit-mixing rule."""

from typing import get_type_hints

from repro.analysis.units import (
    CYCLES,
    Cycles,
    DollarsPerHour,
    Instructions,
    Unit,
    UNIT_ALIASES,
)


class TestVocabulary:
    def test_units_are_zero_cost_floats(self):
        def pay(rate: DollarsPerHour, hours: float) -> float:
            return rate * hours

        assert pay(0.013, 2.0) == 0.026

    def test_annotated_metadata_carries_the_unit(self):
        def drain(cycles: Cycles) -> float:
            return cycles

        hints = get_type_hints(drain, include_extras=True)
        assert CYCLES in hints["cycles"].__metadata__

    def test_alias_table_is_consistent(self):
        assert UNIT_ALIASES["Cycles"] == Unit("cycles").name
        assert UNIT_ALIASES["Instructions"] == "instructions"
        assert len(set(UNIT_ALIASES)) == len(UNIT_ALIASES)

    def test_real_modules_accept_annotations(self):
        from repro.arch.cost import DEFAULT_COST_MODEL

        assert DEFAULT_COST_MODEL.rate(1, 64) > 0.0


class TestUnitMixRule:
    def test_adding_cycles_to_instructions_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro.analysis.units import Cycles, Instructions

            def wrong(cycles: Cycles, instructions: Instructions):
                return cycles + instructions
            """
        )
        assert [f.rule for f in findings] == ["unit-mix"]

    def test_subtracting_mixed_units_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro.analysis.units import Dollars, Cycles

            def wrong(budget: Dollars, elapsed: Cycles):
                return budget - elapsed
            """
        )
        assert [f.rule for f in findings] == ["unit-mix"]

    def test_annotated_local_variables_participate(self, lint_source):
        findings = lint_source(
            """
            from repro.analysis.units import Cycles, Instructions

            def wrong(sample):
                cycles: Cycles = sample.cycles
                instructions: Instructions = sample.instructions
                return instructions + cycles
            """
        )
        assert [f.rule for f in findings] == ["unit-mix"]

    def test_same_unit_addition_is_clean(self, lint_source):
        findings = lint_source(
            """
            from repro.analysis.units import Cycles

            def total(active: Cycles, idle: Cycles):
                return active + idle
            """
        )
        assert findings == []

    def test_ratio_via_division_is_clean(self, lint_source):
        findings = lint_source(
            """
            from repro.analysis.units import Cycles, Instructions

            def ipc(instructions: Instructions, cycles: Cycles):
                return instructions / cycles
            """
        )
        assert findings == []

    def test_unannotated_code_is_never_flagged(self, lint_source):
        findings = lint_source(
            """
            def mystery(a, b):
                return a + b
            """
        )
        assert findings == []
