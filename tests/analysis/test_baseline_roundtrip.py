"""Baseline round-tripping: a baseline written on one platform gates
identically after path-separator and ordering churn.

Fingerprints hash the POSIX-canonical path, so ``src\\repro\\x.py``
(a Windows-written baseline) and ``src/repro/x.py`` (the same finding
scanned on POSIX) produce the same gate; and they are independent of
finding order, so shuffled scans diff clean.
"""

import json
from pathlib import Path

from repro.analysis.baseline import (
    diff_against_baseline,
    fingerprints,
    render_baseline,
    write_baseline,
)
from repro.analysis.core import Finding


def finding(path, line=3, rule="float-eq", snippet="if x == 0.1:"):
    return Finding(
        path=path,
        line=line,
        column=4,
        rule=rule,
        message="exact equality comparison against a float literal",
        snippet=snippet,
    )


class TestPathSeparatorChurn:
    def test_backslash_and_posix_paths_share_a_fingerprint(self):
        (_, posix_digest), = fingerprints([finding("src/repro/sim/a.py")])
        (_, windows_digest), = fingerprints(
            [finding("src\\repro\\sim\\a.py")]
        )
        assert posix_digest == windows_digest

    def test_windows_written_baseline_gates_posix_scan(self, tmp_path):
        baseline = tmp_path / "LINT_BASELINE.json"
        write_baseline([finding("src\\repro\\sim\\a.py")], baseline)
        diff = diff_against_baseline(
            [finding("src/repro/sim/a.py")], baseline
        )
        assert diff.new == []
        assert len(diff.known) == 1
        assert diff.stale == []

    def test_rendered_baseline_stores_posix_relative_paths(self):
        rendered = render_baseline([finding("src\\repro\\sim\\a.py")])
        payload = json.loads(rendered)
        (entry,) = payload["findings"]
        assert entry["path"] == "src/repro/sim/a.py"
        assert "\\" not in rendered


class TestOrderingChurn:
    def findings(self):
        return [
            finding("src/repro/sim/a.py", line=3),
            finding("src/repro/sim/b.py", line=9, rule="set-iteration",
                    snippet="for item in seen:"),
            finding("src/repro/cloud/c.py", line=1, rule="wall-clock",
                    snippet="now = time.time()"),
        ]

    def test_shuffled_scan_gates_identically(self, tmp_path):
        baseline = tmp_path / "LINT_BASELINE.json"
        write_baseline(self.findings(), baseline)
        diff = diff_against_baseline(
            list(reversed(self.findings())), baseline
        )
        assert diff.new == []
        assert len(diff.known) == 3
        assert diff.stale == []

    def test_rendered_baseline_is_order_independent(self):
        assert render_baseline(self.findings()) == render_baseline(
            list(reversed(self.findings()))
        )

    def test_duplicate_findings_stay_distinct_by_occurrence(self, tmp_path):
        # Two identical findings on different lines of one file: both
        # must be recorded (occurrence-indexed), and a rescan with only
        # one left reports the other as stale, not new.
        baseline = tmp_path / "LINT_BASELINE.json"
        pair = [
            finding("src/repro/sim/a.py", line=3),
            finding("src/repro/sim/a.py", line=30),
        ]
        write_baseline(pair, baseline)
        payload = json.loads(baseline.read_text())
        assert len(payload["findings"]) == 2
        diff = diff_against_baseline(pair[:1], baseline)
        assert diff.new == []
        assert len(diff.known) == 1
        assert len(diff.stale) == 1
