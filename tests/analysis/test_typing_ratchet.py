"""Structural rules of the mypy strict ratchet in pyproject.toml.

The ratchet is the ``[[tool.mypy.overrides]]`` module list: seed-era
modules exempted from strict typing.  These tests keep it honest —
entries must name real modules (no zombie exemptions), stay sorted and
unique (reviewable diffs), and never cover the modules that are
contractually strict-clean.  When mypy itself is installed (CI's lint
job), the final test runs it for real.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python 3.10
    tomllib = None

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Modules that must never be exempted from strict typing.
ALWAYS_STRICT_PREFIXES = ("repro.analysis", "repro.perf")


def load_ratchet():
    if tomllib is None:
        pytest.skip("tomllib requires Python 3.11+")
    config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    overrides = config["tool"]["mypy"]["overrides"]
    ratchet = [
        entry
        for entry in overrides
        if entry.get("ignore_errors") and isinstance(entry["module"], list)
    ]
    assert len(ratchet) == 1, "expected exactly one ratchet override block"
    return ratchet[0]["module"]


def module_exists(module):
    relative = Path(*module.split("."))
    return (
        (REPO_ROOT / "src" / relative).with_suffix(".py").exists()
        or (REPO_ROOT / "src" / relative / "__init__.py").exists()
    )


class TestRatchetStructure:
    def test_every_entry_names_an_existing_module(self):
        ratchet = load_ratchet()
        zombies = [m for m in ratchet if not module_exists(m)]
        assert zombies == [], (
            "ratchet lists modules that no longer exist; remove them: "
            f"{zombies}"
        )

    def test_entries_are_sorted_and_unique(self):
        ratchet = load_ratchet()
        assert ratchet == sorted(set(ratchet))

    def test_strict_clean_modules_are_not_exempt(self):
        ratchet = load_ratchet()
        offenders = [
            m
            for m in ratchet
            if any(
                m == prefix or m.startswith(prefix + ".")
                for prefix in ALWAYS_STRICT_PREFIXES
            )
        ]
        assert offenders == [], (
            "the analysis suite and the FAST switch must stay "
            f"strict-clean, but the ratchet exempts {offenders}"
        )

    def test_mypy_config_is_strict(self):
        if tomllib is None:
            pytest.skip("tomllib requires Python 3.11+")
        config = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        mypy = config["tool"]["mypy"]
        assert mypy["strict"] is True
        assert mypy["files"] == ["src/repro"]


class TestMypyRuns:
    def test_mypy_passes_on_the_repo(self):
        if shutil.which("mypy") is None:
            pytest.skip("mypy is not installed in this environment")
        result = subprocess.run(
            [sys.executable, "-m", "mypy", "--no-error-summary"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stdout + result.stderr
