"""The runtime sanitizer: freeze-on-publish, shadow recounts, RNG
checkpoint verification.

Each engine hook gets a corruption test (tamper with the shared state,
watch ``SanitizerViolation`` name the rule/owner/site) and a clean twin
(the untampered engine runs sanitized without a single violation).
"""

import random
from types import MappingProxyType

import numpy as np
import pytest

from repro import perf
from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerViolation
from repro.arch.fabric import Fabric, TileKind
from repro.arch.vcore import VCoreConfig
from repro.sim.optables import cache_clear, operating_point_table
from repro.sim.trace import TraceGenerator
from repro.workloads.apps import get_app


@pytest.fixture(autouse=True)
def sanitizer_on():
    with sanitize.sanitized(True):
        yield
    cache_clear()


@pytest.fixture
def fast():
    previous = perf.FAST
    perf.set_fast_paths(True)
    yield
    perf.set_fast_paths(previous)


class TestFreeze:
    def test_dict_becomes_readonly_view(self):
        frozen = sanitize.freeze({"a": [1, 2]}, "cache-publish", "test")
        assert isinstance(frozen, MappingProxyType)
        assert frozen["a"] == (1, 2)
        with pytest.raises(TypeError):
            frozen["b"] = 3

    def test_ndarray_marked_readonly_in_place(self):
        array = np.arange(4.0)
        frozen = sanitize.freeze(array, "cache-publish", "test")
        assert frozen is array
        assert not array.flags.writeable
        with pytest.raises(ValueError):
            array[0] = 99.0

    def test_unfreezable_object_is_a_violation(self):
        class Opaque:
            pass

        with pytest.raises(SanitizerViolation) as excinfo:
            sanitize.freeze(Opaque(), "cache-publish", "owner-site")
        violation = excinfo.value
        assert violation.rule == "cache-publish"
        assert violation.owner == "owner-site"
        assert "Opaque" in violation.detail

    def test_sealable_object_gets_sealed(self):
        class Sealable:
            def __init__(self):
                self.sealed = False

            def seal(self):
                self.sealed = True

        value = Sealable()
        assert sanitize.freeze(value, "cache-publish", "test") is value
        assert value.sealed


class TestVerifyFrozen:
    def test_writeable_ndarray_is_a_violation(self):
        with pytest.raises(SanitizerViolation) as excinfo:
            sanitize.verify_frozen(
                np.arange(3.0), "cache-publish", "owner", "site"
            )
        assert "writeable" in str(excinfo.value)

    def test_bare_dict_is_a_violation(self):
        with pytest.raises(SanitizerViolation):
            sanitize.verify_frozen({}, "cache-publish", "owner", "site")

    def test_mutable_nested_in_tuple_is_found(self):
        with pytest.raises(SanitizerViolation):
            sanitize.verify_frozen(
                (1, [2]), "cache-publish", "owner", "site"
            )

    def test_frozen_forms_pass(self):
        sanitize.verify_frozen(
            (1, "x", frozenset({2}), MappingProxyType({"k": (3,)})),
            "cache-publish",
            "owner",
            "site",
        )

    def test_disabled_by_default_without_env(self, monkeypatch):
        # The module-level default tracks REPRO_SANITIZE at import; the
        # enable/disable API is what tests and the CI job flip.
        with sanitize.sanitized(False):
            assert not sanitize.enabled()
        assert sanitize.enabled()


class TestViolationPickling:
    def test_violation_survives_a_pool_result_pipe(self):
        # A violation raised inside a sanitized pool worker travels
        # back to the parent pickled; a round trip must rebuild the
        # exception (not TypeError and break the pool).
        import pickle

        original = SanitizerViolation(
            "shm-attach", "repro.sim.optstore", "attach abc", "bad magic"
        )
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, SanitizerViolation)
        assert (clone.rule, clone.owner, clone.site, clone.detail) == (
            original.rule,
            original.owner,
            original.site,
            original.detail,
        )
        assert str(clone) == str(original)


class TestOptablesPublish:
    def test_published_table_is_sealed_and_readonly(self, fast):
        cache_clear()
        phase = get_app("x264").phases[0]
        table = operating_point_table(phase)
        assert table.sealed
        assert not table.speedup_array.flags.writeable
        with pytest.raises(TypeError):
            table._ipc[table.points[0].config] = 0.0

    def test_tampered_cached_table_raises_on_next_hit(self, fast):
        cache_clear()
        phase = get_app("x264").phases[0]
        table = operating_point_table(phase)
        # Simulate a stray writer thawing the published array.
        table.speedup_array.setflags(write=True)
        with pytest.raises(SanitizerViolation) as excinfo:
            operating_point_table(phase)
        assert excinfo.value.rule == "cache-publish"
        assert "optables" in excinfo.value.owner

    def test_clean_cache_hits_stay_silent(self, fast):
        cache_clear()
        phase = get_app("x264").phases[0]
        first = operating_point_table(phase)
        second = operating_point_table(phase)
        assert first is second


class TestFabricShadowRecount:
    def test_corrupted_free_index_is_caught(self, fast):
        fabric = Fabric(width=4, height=4)
        # Corrupt the incremental index: claim an allocated tile free.
        config = VCoreConfig(slices=2, l2_kb=128)
        fabric.allocate(vcore_id=1, config=config)
        taken = next(
            position
            for position, tile in fabric._tiles.items()
            if tile.owner_vcore == 1 and tile.kind is TileKind.SLICE
        )
        fabric._free_index[TileKind.SLICE].add(taken)
        with pytest.raises(SanitizerViolation) as excinfo:
            for _ in range(2 * sanitize.SHADOW_SAMPLE_PERIOD):
                fabric._free_positions(TileKind.SLICE)
        assert excinfo.value.rule == "shadow-recount"
        assert "_free_index" in excinfo.value.owner

    def test_corrupted_count_is_caught(self, fast):
        fabric = Fabric(width=4, height=4)
        fabric._free_index[TileKind.L2_BANK].pop()
        with pytest.raises(SanitizerViolation):
            for _ in range(2 * sanitize.SHADOW_SAMPLE_PERIOD):
                fabric.count_free(TileKind.L2_BANK)

    def test_clean_fabric_runs_sampled_checks_silently(self, fast):
        fabric = Fabric(width=4, height=4)
        config = VCoreConfig(slices=2, l2_kb=128)
        allocation = fabric.allocate(vcore_id=1, config=config)
        for _ in range(2 * sanitize.SHADOW_SAMPLE_PERIOD):
            fabric._free_positions(TileKind.SLICE)
            fabric.count_free(TileKind.L2_BANK)
        fabric.release(allocation.vcore_id)
        for _ in range(2 * sanitize.SHADOW_SAMPLE_PERIOD):
            fabric._free_positions(TileKind.L2_BANK)


class TestRngCheckpoints:
    def test_clean_generation_verifies_silently(self, fast):
        phase = get_app("x264").phases[0]
        generator = TraceGenerator(phase, seed=1234)
        ops = generator.generate(5000)
        assert len(ops) == 5000

    def test_fast_and_scalar_agree_under_sanitizer(self):
        phase = get_app("x264").phases[0]
        results = {}
        for mode in (True, False):
            previous = perf.FAST
            perf.set_fast_paths(mode)
            try:
                generator = TraceGenerator(phase, seed=99)
                ops = generator.generate(3000)
                results[mode] = (ops, generator.rng.getstate())
            finally:
                perf.set_fast_paths(previous)
        assert results[True][0] == results[False][0]
        assert results[True][1] == results[False][1]
