"""Shared helpers for the static-analysis test suite."""

import textwrap

import pytest

from repro.analysis import ALL_RULES, RULES_BY_ID
from repro.analysis.core import FileContext, check_file, check_program


@pytest.fixture
def lint_source():
    """Lint a source snippet as if it lived at ``path``; return findings.

    ``rules`` selects a subset by id (default: the full suite), so each
    rule's tests assert both that their rule fires and that the snippet
    is attributed to the *right* rule.
    """

    def run(source, path="src/repro/sim/module.py", rules=None):
        context = FileContext(path, textwrap.dedent(source))
        selected = (
            [RULES_BY_ID[rule_id] for rule_id in rules]
            if rules is not None
            else ALL_RULES
        )
        return check_file(context, selected)

    return run


@pytest.fixture
def lint_program():
    """Run the whole-program rules over a {path: source} snippet set.

    Per-file findings from the same rule selection are included too, so
    a test exercising ``lock-discipline`` (per-file) and
    ``worker-global-write`` (whole-program) together reads the same.
    """

    def run(sources, rules=None):
        contexts = [
            FileContext(path, textwrap.dedent(source))
            for path, source in sorted(sources.items())
        ]
        selected = (
            [RULES_BY_ID[rule_id] for rule_id in rules]
            if rules is not None
            else ALL_RULES
        )
        findings = []
        for context in contexts:
            findings.extend(check_file(context, selected))
        findings.extend(check_program(contexts, selected))
        findings.sort(key=lambda finding: finding.sort_key)
        return findings

    return run
