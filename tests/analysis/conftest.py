"""Shared helpers for the static-analysis test suite."""

import textwrap

import pytest

from repro.analysis import ALL_RULES, RULES_BY_ID
from repro.analysis.core import FileContext, check_file


@pytest.fixture
def lint_source():
    """Lint a source snippet as if it lived at ``path``; return findings.

    ``rules`` selects a subset by id (default: the full suite), so each
    rule's tests assert both that their rule fires and that the snippet
    is attributed to the *right* rule.
    """

    def run(source, path="src/repro/sim/module.py", rules=None):
        context = FileContext(path, textwrap.dedent(source))
        selected = (
            [RULES_BY_ID[rule_id] for rule_id in rules]
            if rules is not None
            else ALL_RULES
        )
        return check_file(context, selected)

    return run
