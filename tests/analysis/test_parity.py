"""Trigger / no-trigger fixtures for the FAST-parity rule."""

from pathlib import Path


class TestFastParity:
    def test_deleted_scalar_twin_triggers(self, lint_source):
        """The acceptance scenario: a fast path whose reference twin
        was deleted (no else arm, nothing after the branch)."""
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    return fast_qos(x)
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_stubbed_reference_twin_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    return fast_qos(x)
                else:
                    pass
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_not_implemented_reference_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    return fast_qos(x)
                else:
                    raise NotImplementedError
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_stubbed_fast_branch_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    pass
                return slow_qos(x)
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_fast_paths_enabled_call_is_recognized(self, lint_source):
        findings = lint_source(
            """
            from repro.perf import fast_paths_enabled

            def qos(x):
                if fast_paths_enabled():
                    return fast_qos(x)
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_if_else_twins_are_clean(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    return fast_qos(x)
                else:
                    return slow_qos(x)
            """
        )
        assert findings == []

    def test_early_exit_idiom_is_clean(self, lint_source):
        """`if not perf.FAST: return scalar(...)` + fall-through fast
        path — the optables.py idiom."""
        findings = lint_source(
            """
            from repro import perf

            def table(x):
                if not perf.FAST:
                    return build_scalar(x)
                return build_vectorized(x)
            """
        )
        assert findings == []

    def test_fallthrough_reference_is_clean(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    cached = lookup(x)
                    if cached is not None:
                        return cached
                return recompute(x)
            """
        )
        assert findings == []

    def test_conditional_expression_is_clean(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                return fast_qos(x) if perf.FAST else slow_qos(x)
            """
        )
        assert findings == []

    def test_unrelated_if_is_clean(self, lint_source):
        findings = lint_source(
            """
            def qos(x):
                if x > 0:
                    return x
            """
        )
        assert findings == []

    def test_dispatch_twin_methods_are_clean(self, lint_source):
        """The pipeline/trace idiom: a public entry point dispatching
        to a private fast twin, the reference twin on fall-through."""
        findings = lint_source(
            """
            from repro import perf

            class Engine:
                def run(self, trace):
                    if perf.FAST:
                        return self._run_event_driven(trace)
                    return self._run_reference(trace)
            """
        )
        assert findings == []

    def test_dispatch_without_reference_twin_triggers(self, lint_source):
        findings = lint_source(
            """
            from repro import perf

            class Engine:
                def run(self, trace):
                    if perf.FAST:
                        return self._run_event_driven(trace)
            """
        )
        assert [f.rule for f in findings] == ["fast-parity"]

    def test_applies_outside_engine_directories(self, lint_source):
        """Parity is repo-wide: harness/baseline code branches on FAST
        too."""
        findings = lint_source(
            """
            from repro import perf

            def qos(x):
                if perf.FAST:
                    return fast_qos(x)
            """,
            path="src/repro/experiments/harness.py",
        )
        assert [f.rule for f in findings] == ["fast-parity"]


class TestEngineFilesClean:
    """The real event-driven engine files lint clean, full suite."""

    def test_pipeline_and_trace_have_zero_findings(self, lint_source):
        root = Path(__file__).resolve().parents[2]
        for relative in (
            "src/repro/sim/pipeline.py",
            "src/repro/sim/trace.py",
        ):
            source = (root / relative).read_text()
            assert lint_source(source, path=relative) == []
