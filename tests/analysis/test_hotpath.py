"""The hot-path performance rules: hotness classification, the four
rules (quadratic-listop, loop-invariant, numpy-scalar-loop, hot-alloc),
the injected historical regressions (PR 3 ``pop(0)`` drain, PR 4
per-cycle ``sorted`` scan), and the repo-tip acceptance sweep.

Every rule gets a trigger case and a no-trigger twin, exactly like
``test_effects.py``; the hotness tests additionally pin the exemption
machinery (scalar branches, ``*_reference`` naming, scalar-only call
edges).
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.core import FileContext, load_contexts, scan_paths
from repro.analysis.hotpath import (
    HOT_RULES,
    hot_report,
    hot_view,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

HOT_RULE_IDS = [rule.id for rule in HOT_RULES]


def rules_of(findings):
    return {finding.rule for finding in findings}


def contexts_of(sources):
    return [
        FileContext(path, textwrap.dedent(source))
        for path, source in sorted(sources.items())
    ]


def view_of(sources):
    return hot_view(contexts_of(sources))


def hot_qualnames(view):
    return {view.graph.functions[key].qualname for key in view.hot}


class TestHotSetMembership:
    def test_entrypoint_and_callees_are_hot(self, lint_program):
        view = view_of(
            {
                "src/repro/experiments/stats.py": """
                from repro.sim.kernels import step

                def run_cell(spec):
                    return step(spec)

                def unrelated(spec):
                    return spec
                """,
                "src/repro/sim/kernels.py": """
                def step(spec):
                    return helper(spec)

                def helper(spec):
                    return spec
                """,
            }
        )
        assert hot_qualnames(view) == {"run_cell", "step", "helper"}

    def test_fast_branch_function_is_a_root(self):
        view = view_of(
            {
                "src/repro/sim/engine.py": """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return x + 1
                    return x + 1

                def cold(x):
                    return x
                """
            }
        )
        assert hot_qualnames(view) == {"kernel"}

    def test_scalar_branch_callee_is_not_hot(self):
        view = view_of(
            {
                "src/repro/sim/engine.py": """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return fast(x)
                    return slow(x)

                def fast(x):
                    return x

                def slow(x):
                    return x
                """
            }
        )
        names = hot_qualnames(view)
        assert "fast" in names
        assert "slow" not in names

    def test_fallthrough_scalar_tail_is_not_hot(self):
        view = view_of(
            {
                "src/repro/sim/engine.py": """
                from repro import perf

                def kernel(x):
                    if perf.FAST:
                        return fast(x)
                    acc = 0
                    for i in range(x):
                        acc += slow(i)
                    return acc

                def fast(x):
                    return x

                def slow(x):
                    return x
                """
            }
        )
        names = hot_qualnames(view)
        assert "fast" in names
        assert "slow" not in names

    def test_reference_twin_is_exempt_even_when_called_from_fast(self):
        # The event-driven pipeline falls back to its reference twin on
        # irregular traces — a call *outside* any scalar branch.  The
        # *_reference naming protocol still keeps the twin cold.
        view = view_of(
            {
                "src/repro/sim/pipeline.py": """
                from repro import perf

                class MultiSlicePipeline:
                    def _run_event_driven(self, trace):
                        if not trace:
                            return self._run_reference(trace)
                        return 1

                    def _run_reference(self, trace):
                        return self._tally(trace)

                    def _tally(self, trace):
                        return len(trace)
                """
            }
        )
        names = hot_qualnames(view)
        assert "MultiSlicePipeline._run_event_driven" in names
        assert "MultiSlicePipeline._run_reference" not in names
        # And nothing reachable only through the reference twin is hot.
        assert "MultiSlicePipeline._tally" not in names

    def test_loop_depth_recorded_per_function(self):
        view = view_of(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    total = 0
                    for row in spec:
                        for item in row:
                            total += item
                    return total

                def flat(spec):
                    return run_cell(spec)
                """
            }
        )
        depths = {
            view.graph.functions[key].qualname: view.graph.functions[
                key
            ].loop_depth
            for key in view.hot
        }
        assert depths["run_cell"] == 2

    def test_comprehension_counts_toward_loop_depth(self):
        view = view_of(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    out = []
                    for row in spec:
                        out.append([x + 1 for x in row])
                    return out
                """
            }
        )
        (key,) = view.hot
        assert view.graph.functions[key].loop_depth == 2


class TestQuadraticListOp:
    def test_pop0_in_hot_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    pending = list(spec)
                    while pending:
                        item = pending.pop(0)
                    return item
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}
        assert ".pop(0)" in findings[0].message

    def test_popleft_drain_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                from collections import deque

                def run_cell(spec):
                    pending = deque(spec)
                    while pending:
                        item = pending.popleft()
                    return item
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_insert0_in_hot_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    out = []
                    for item in spec:
                        out.insert(0, item)
                    return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}

    def test_membership_against_list_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    seen = []
                    for item in spec:
                        if item in seen:
                            continue
                        seen.append(item)
                    return seen
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}
        assert "seen" in findings[0].message

    def test_membership_against_set_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    seen = set()
                    for item in spec:
                        if item in seen:
                            continue
                        seen.add(item)
                    return seen
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_list_concat_augassign_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    out = []
                    for item in spec:
                        out += [item]
                    return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}

    def test_rebinding_concat_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    out = []
                    for item in spec:
                        out = out + [item]
                    return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}

    def test_cold_function_is_ignored(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def cold_helper(spec):
                    pending = list(spec)
                    while pending:
                        item = pending.pop(0)
                    return item
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_scalar_branch_is_exempt(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                from repro import perf

                def run_cell(spec):
                    if perf.FAST:
                        return len(spec)
                    pending = list(spec)
                    while pending:
                        item = pending.pop(0)
                    return item
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_pragma_suppresses(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    pending = list(spec)
                    while pending:
                        item = pending.pop(0)  # lint: allow(quadratic-listop)
                    return item
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []


class TestPR3RegressionInjection:
    """Reintroducing the PR 3 arrival drain must fail ``repro lint``."""

    def test_pop0_drain_in_provider_run_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/provider.py": """
                class CloudProvider:
                    def run(self, horizon):
                        arrivals = sorted(self.pending)
                        for interval in range(horizon):
                            while arrivals and arrivals[0] <= interval:
                                tenant = arrivals.pop(0)
                                self.admit(tenant)

                    def admit(self, tenant):
                        return tenant
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}
        assert findings[0].path == "src/repro/cloud/provider.py"
        assert "CloudProvider.run" in findings[0].message


class TestLoopInvariant:
    def test_sorted_in_hot_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    for row in spec:
                        order = sorted(row)
                    return order
                """
            },
            rules=["loop-invariant"],
        )
        assert rules_of(findings) == {"loop-invariant"}
        assert "sorted" in findings[0].message

    def test_sorted_outside_loop_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    order = sorted(spec)
                    total = 0
                    for item in order:
                        total += item
                    return total
                """
            },
            rules=["loop-invariant"],
        )
        assert findings == []

    def test_re_compile_in_hot_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import re

                def run_cell(lines):
                    hits = 0
                    for line in lines:
                        if re.compile("x+").match(line):
                            hits += 1
                    return hits
                """
            },
            rules=["loop-invariant"],
        )
        assert rules_of(findings) == {"loop-invariant"}
        assert "re.compile" in findings[0].message

    def test_min_over_loop_constant_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec, floor):
                    total = 0
                    for item in spec:
                        total += item - min(floor)
                    return total
                """
            },
            rules=["loop-invariant"],
        )
        assert rules_of(findings) == {"loop-invariant"}
        assert "min" in findings[0].message

    def test_min_over_loop_varying_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    best = 0
                    for row in spec:
                        best += min(row)
                    return best
                """
            },
            rules=["loop-invariant"],
        )
        assert findings == []

    def test_repeated_attribute_chain_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(sim):
                    total = 0
                    for i in range(100):
                        total += sim.config.weights[i]
                        total -= sim.config.weights[0]
                    return total
                """
            },
            rules=["loop-invariant"],
        )
        assert rules_of(findings) == {"loop-invariant"}
        assert "sim.config.weights" in findings[0].message

    def test_chain_on_loop_varying_root_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(sims):
                    total = 0
                    for sim in sims:
                        total += sim.config.weight
                        total -= sim.config.weight
                    return total
                """
            },
            rules=["loop-invariant"],
        )
        assert findings == []

    def test_single_chain_occurrence_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(sim):
                    total = 0
                    for i in range(100):
                        total += sim.config.weight
                    return total
                """
            },
            rules=["loop-invariant"],
        )
        assert findings == []


class TestPR4RegressionInjection:
    """Reintroducing the PR 4 per-cycle window sort must fail lint."""

    def test_per_cycle_sorted_scan_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/pipeline.py": """
                class MultiSlicePipeline:
                    def _run_event_driven(self, trace):
                        cycle = 0
                        window = list(trace)
                        while window:
                            for op in sorted(window):
                                if op <= cycle:
                                    window.remove(op)
                            cycle += 1
                        return cycle
                """
            },
            rules=["loop-invariant"],
        )
        assert rules_of(findings) == {"loop-invariant"}
        assert findings[0].path == "src/repro/sim/pipeline.py"
        assert "MultiSlicePipeline._run_event_driven" in findings[0].message


class TestNumpyScalarLoop:
    def test_elementwise_loop_over_ndarray_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import numpy as np

                def run_cell(spec):
                    values = np.asarray(spec)
                    total = 0.0
                    for value in values:
                        total += value
                    return total
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert rules_of(findings) == {"numpy-scalar-loop"}
        assert "values" in findings[0].message

    def test_range_len_indexing_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import numpy as np

                def run_cell(spec):
                    values = np.zeros(len(spec))
                    total = 0.0
                    for i in range(len(values)):
                        total += values[i]
                    return total
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert rules_of(findings) == {"numpy-scalar-loop"}

    def test_enumerate_over_ndarray_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import numpy as np

                def run_cell(spec):
                    values = np.array(spec)
                    total = 0.0
                    for i, value in enumerate(values):
                        total += i * value
                    return total
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert rules_of(findings) == {"numpy-scalar-loop"}

    def test_vectorized_use_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import numpy as np

                def run_cell(spec):
                    values = np.asarray(spec)
                    return float(values.sum())
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert findings == []

    def test_loop_over_plain_list_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(spec):
                    values = list(spec)
                    total = 0.0
                    for value in values:
                        total += value
                    return total
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert findings == []

    def test_scalar_branch_iteration_is_exempt(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import numpy as np
                from repro import perf

                def run_cell(spec):
                    values = np.asarray(spec)
                    if perf.FAST:
                        return float(values.sum())
                    total = 0.0
                    for value in values:
                        total += value
                    return total
                """
            },
            rules=["numpy-scalar-loop"],
        )
        assert findings == []


class TestHotAlloc:
    def test_class_construction_in_inner_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                class Point:
                    def __init__(self, x, y):
                        self.x = x
                        self.y = y

                def run_cell(grid):
                    total = 0
                    for row in grid:
                        for x in row:
                            total += Point(x, x).x
                    return total
                """
            },
            rules=["hot-alloc"],
        )
        assert rules_of(findings) == {"hot-alloc"}
        assert "Point" in findings[0].message

    def test_construction_in_single_loop_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                class Point:
                    def __init__(self, x, y):
                        self.x = x
                        self.y = y

                def run_cell(row):
                    total = 0
                    for x in row:
                        total += Point(x, x).x
                    return total
                """
            },
            rules=["hot-alloc"],
        )
        assert findings == []

    def test_comprehension_in_nested_loop_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(grid):
                    out = []
                    for row in grid:
                        for x in row:
                            out.append([x + d for d in (1, 2)])
                    return out
                """
            },
            rules=["hot-alloc"],
        )
        assert rules_of(findings) == {"hot-alloc"}

    def test_generator_in_nested_loop_is_clean(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(grid):
                    total = 0
                    for row in grid:
                        for x in row:
                            total += sum(x + d for d in (1, 2))
                    return total
                """
            },
            rules=["hot-alloc"],
        )
        assert findings == []

    def test_unscanned_callable_is_ignored(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                def run_cell(grid):
                    total = 0
                    for row in grid:
                        for x in row:
                            total += abs(x)
                    return total
                """
            },
            rules=["hot-alloc"],
        )
        assert findings == []


class TestHotReport:
    def test_ranked_by_depth_times_findings(self):
        entries = hot_report(
            contexts_of(
                {
                    "src/repro/experiments/stats.py": """
                    def run_cell(spec):
                        pending = list(spec)
                        for row in spec:
                            while pending:
                                pending.pop(0)
                        return pending

                    def run_cells(specs):
                        return [run_cell(spec) for spec in specs]
                    """
                }
            )
        )
        assert entries[0].qualname == "run_cell"
        assert entries[0].depth == 2
        assert entries[0].findings >= 1
        assert entries[0].score == entries[0].depth * entries[0].findings
        by_name = {entry.qualname: entry for entry in entries}
        assert by_name["run_cells"].findings == 0

    def test_pragma_removes_finding_from_report(self):
        entries = hot_report(
            contexts_of(
                {
                    "src/repro/experiments/stats.py": """
                    def run_cell(spec):
                        pending = list(spec)
                        for row in spec:
                            while pending:
                                pending.pop(0)  # lint: allow(quadratic-listop)
                        return pending
                    """
                }
            )
        )
        (entry,) = entries
        assert entry.findings == 0
        assert entry.score == 0


class TestRepoTipIsClean:
    """The acceptance sweep: the real engine passes all four rules."""

    def test_src_tree_has_no_hot_path_findings(self):
        findings = scan_paths(
            [REPO_ROOT / "src"], ALL_RULES, root=REPO_ROOT
        )
        hot_findings = [
            finding
            for finding in findings
            if finding.rule in set(HOT_RULE_IDS)
        ]
        assert hot_findings == []

    def test_real_entrypoints_are_hot(self):
        contexts, errors = load_contexts(
            [REPO_ROOT / "src"], root=REPO_ROOT
        )
        assert errors == []
        view = hot_view(contexts)
        hot = {
            (
                view.graph.functions[key].module,
                view.graph.functions[key].qualname,
            )
            for key in view.hot
        }
        assert ("repro.experiments.stats", "run_cell") in hot
        assert (
            "repro.sim.pipeline",
            "MultiSlicePipeline._run_event_driven",
        ) in hot
        assert ("repro.cloud.provider", "CloudProvider.run") in hot
        assert ("repro.sim.trace", "TraceGenerator.generate") in hot
        assert ("repro.sim.optstore", "publish") in hot
        assert ("repro.sim.batchpipe", "run_batch") in hot
        assert (
            "repro.sim.trace",
            "TraceGenerator.generate_arrays",
        ) in hot
        assert ("repro.cloud.service", "ServiceEngine.run") in hot
        assert (
            "repro.cloud.service",
            "ServiceEngine._run_event_driven",
        ) in hot
        assert ("repro.cloud.traffic", "generate_traffic") in hot
        # The dense loop is the scalar twin: exempt by its name.
        assert (
            "repro.cloud.service",
            "ServiceEngine._run_dense_reference",
        ) not in hot

    def test_scalar_references_are_not_hot(self):
        contexts, errors = load_contexts(
            [REPO_ROOT / "src"], root=REPO_ROOT
        )
        assert errors == []
        view = hot_view(contexts)
        names = {view.graph.functions[key].qualname for key in view.hot}
        assert not any(name.endswith("_reference") for name in names)


class TestBatchTierEntrypoints:
    """The PR's new roots: ``run_batch`` and ``generate_arrays``.

    Trigger/no-trigger twins proving hotness flows from the batch-tier
    entrypoints into their callees, while the scalar reference twins
    stay exempt.
    """

    def test_run_batch_callee_regression_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/batchpipe.py": """
                def run_batch(cells):
                    return _pool(cells)

                def _pool(cells):
                    pending = list(cells)
                    while pending:
                        cell = pending.pop(0)
                    return cell
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}
        assert ".pop(0)" in findings[0].message

    def test_run_batch_reference_twin_is_exempt(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/batchpipe.py": """
                def run_batch(cells):
                    return _pool_reference(cells)

                def _pool_reference(cells):
                    pending = list(cells)
                    while pending:
                        cell = pending.pop(0)
                    return cell
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_generate_arrays_callee_regression_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/trace.py": """
                class TraceGenerator:
                    def generate_arrays(self, count):
                        return _decode(count)

                def _decode(count):
                    out = []
                    for i in range(count):
                        out = out + [i]
                    return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}

    def test_cold_sibling_method_is_ignored(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/trace.py": """
                class TraceGenerator:
                    def generate_arrays(self, count):
                        return list(range(count))

                    def describe(self):
                        out = []
                        for name in self.names:
                            out = out + [name]
                        return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []


class TestServiceEntrypoints:
    """The service tier's roots: ``ServiceEngine.run`` and friends.

    Trigger/no-trigger twins proving hotness flows from the event
    engine's entrypoints into their callees, while the dense scalar
    reference loop stays exempt.
    """

    def test_service_run_callee_regression_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/service.py": """
                class ServiceEngine:
                    def run(self, until=None):
                        return self._run_event_driven(until)

                    def _run_event_driven(self, until):
                        pending = list(self._heap)
                        while pending:
                            event = pending.pop(0)
                        return event
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}
        assert ".pop(0)" in findings[0].message

    def test_dense_reference_twin_is_exempt(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/service.py": """
                class ServiceEngine:
                    def run(self, until=None):
                        return self._run_dense_reference(until)

                    def _run_dense_reference(self, until):
                        pending = list(self._residents)
                        while pending:
                            resident = pending.pop(0)
                        return resident
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []

    def test_generate_traffic_callee_regression_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/traffic.py": """
                def generate_traffic(spec):
                    return _bursts(spec)

                def _bursts(spec):
                    out = []
                    for start in range(spec.horizon):
                        out = out + [start]
                    return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert rules_of(findings) == {"quadratic-listop"}

    def test_cold_service_sibling_is_ignored(self, lint_program):
        findings = lint_program(
            {
                "src/repro/cloud/service.py": """
                class ServiceEngine:
                    def run(self, until=None):
                        return until

                    def describe(self):
                        out = []
                        for name in self._names:
                            out = out + [name]
                        return out
                """
            },
            rules=["quadratic-listop"],
        )
        assert findings == []


class TestLintSelfPerformance:
    """The analyzer must never become the slow path itself."""

    def test_full_repo_lint_under_30_seconds(self):
        start = time.monotonic()
        scan_paths([REPO_ROOT / "src"], ALL_RULES, root=REPO_ROOT)
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, f"repro lint took {elapsed:.1f}s"
