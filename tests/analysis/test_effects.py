"""The shared-state effect rules: worker-global-write, lock-discipline,
cache-mutation.

Every rule gets a trigger case and a no-trigger twin (the same code
with the discipline restored), plus pragma suppression and the
acceptance check that the real engine modules are clean.
"""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.core import (
    FileContext,
    check_file,
    check_program,
    scan_paths,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestWorkerGlobalWrite:
    def test_write_in_entrypoint_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                _RESULTS = []

                def run_cell(spec):
                    _RESULTS.append(spec)
                    return spec
                """
            },
            rules=["worker-global-write"],
        )
        assert rules_of(findings) == {"worker-global-write"}
        assert "_RESULTS" in findings[0].message
        assert "worker entrypoint" in findings[0].message

    def test_write_reached_through_call_chain_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                from repro.sim.tables import lookup

                def run_cell(spec):
                    return lookup(spec)
                """,
                "src/repro/sim/tables.py": """
                _MEMO = {}

                def lookup(spec):
                    _MEMO[spec] = spec
                    return spec
                """,
            },
            rules=["worker-global-write"],
        )
        assert rules_of(findings) == {"worker-global-write"}
        (finding,) = findings
        assert finding.path == "src/repro/sim/tables.py"
        assert "run_cell" in finding.message

    def test_fast_twin_is_a_root_too(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/engine.py": """
                from repro import perf

                _SCRATCH = {}

                def kernel(x):
                    if perf.FAST:
                        _SCRATCH[x] = x
                        return x
                    return x
                """
            },
            rules=["worker-global-write"],
        )
        assert rules_of(findings) == {"worker-global-write"}
        assert "perf.FAST twin" in findings[0].message

    def test_lock_synchronized_write_does_not_fire(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                import threading

                _LOCK = threading.Lock()
                _RESULTS = []

                def run_cell(spec):
                    with _LOCK:
                        _RESULTS.append(spec)
                    return spec
                """
            },
            rules=["worker-global-write"],
        )
        assert findings == []

    def test_unreachable_write_does_not_fire(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                _RESULTS = []

                def run_cell(spec):
                    return spec

                def debug_note(spec):
                    _RESULTS.append(spec)
                """
            },
            rules=["worker-global-write"],
        )
        assert findings == []

    def test_pragma_suppresses(self, lint_program):
        findings = lint_program(
            {
                "src/repro/experiments/stats.py": """
                _RESULTS = []

                def run_cell(spec):
                    _RESULTS.append(spec)  # lint: allow(worker-global-write)
                    return spec
                """
            },
            rules=["worker-global-write"],
        )
        assert findings == []


class TestLockDiscipline:
    def test_unlocked_write_in_lock_module_fires(self, lint_source):
        findings = lint_source(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _TABLE = {}

            def publish(key, value):
                _TABLE[key] = value
            """,
            rules=["lock-discipline"],
        )
        assert rules_of(findings) == {"lock-discipline"}
        assert "write to" in findings[0].message

    def test_unlocked_read_fires_once_per_site(self, lint_source):
        findings = lint_source(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _TABLE = {}

            def peek(key):
                return _TABLE.get(key)
            """,
            rules=["lock-discipline"],
        )
        assert len(findings) == 1
        assert "read of" in findings[0].message

    def test_locked_access_does_not_fire(self, lint_source):
        findings = lint_source(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _TABLE = {}

            def publish(key, value):
                with _CACHE_LOCK:
                    _TABLE[key] = value

            def peek(key):
                with _CACHE_LOCK:
                    return _TABLE.get(key)
            """,
            rules=["lock-discipline"],
        )
        assert findings == []

    def test_module_without_lock_is_out_of_scope(self, lint_source):
        findings = lint_source(
            """
            _TABLE = {}

            def publish(key, value):
                _TABLE[key] = value
            """,
            rules=["lock-discipline"],
        )
        assert findings == []

    def test_immutable_constant_read_does_not_fire(self, lint_source):
        findings = lint_source(
            """
            import threading

            _CACHE_LOCK = threading.Lock()
            _MAXSIZE = 4096

            def limit():
                return _MAXSIZE
            """,
            rules=["lock-discipline"],
        )
        assert findings == []


class TestStoreLockConventions:
    """The tiered-store idioms the analyzer understands: ``*_LOCK``
    named slots (even ``None``-initialized cross-process ones),
    ``*_locked`` caller-holds-the-lock helpers, and sealing an ndarray
    in place with ``setflags(write=False)`` before publishing it."""

    def test_none_initialized_lock_slot_declares_the_protocol(
        self, lint_source
    ):
        findings = lint_source(
            """
            _CREATE_LOCK = None
            _TABLE = {}

            def publish(key, value):
                _TABLE[key] = value
            """,
            rules=["lock-discipline"],
        )
        assert rules_of(findings) == {"lock-discipline"}

    def test_with_block_on_named_lock_slot_passes(self, lint_source):
        findings = lint_source(
            """
            _CREATE_LOCK = None
            _TABLE = {}

            def publish(key, value):
                with _CREATE_LOCK:
                    _TABLE[key] = value
            """,
            rules=["lock-discipline"],
        )
        assert findings == []

    def test_locked_helper_own_effects_pass(self, lint_source):
        findings = lint_source(
            """
            import threading

            _STORE_LOCK = threading.Lock()
            _SEGMENTS = {}

            def _register_locked(name, seg):
                _SEGMENTS[name] = seg

            def register(name, seg):
                with _STORE_LOCK:
                    _register_locked(name, seg)
            """,
            rules=["lock-discipline"],
        )
        assert findings == []

    def test_unlocked_call_to_locked_helper_fires(self, lint_source):
        findings = lint_source(
            """
            import threading

            _STORE_LOCK = threading.Lock()
            _SEGMENTS = {}

            def _register_locked(name, seg):
                _SEGMENTS[name] = seg

            def register(name, seg):
                _register_locked(name, seg)
            """,
            rules=["lock-discipline"],
        )
        assert rules_of(findings) == {"lock-discipline"}
        assert "_register_locked" in findings[0].message
        assert "lock already held" in findings[0].message

    def test_locked_helper_chaining_locked_helpers_passes(
        self, lint_source
    ):
        findings = lint_source(
            """
            import threading

            _STORE_LOCK = threading.Lock()
            _SEGMENTS = {}
            _VIEWS = {}

            def _view_locked(name):
                return _VIEWS.get(name)

            def _register_locked(name, seg):
                _SEGMENTS[name] = seg
                return _view_locked(name)

            def register(name, seg):
                with _STORE_LOCK:
                    return _register_locked(name, seg)
            """,
            rules=["lock-discipline"],
        )
        assert findings == []

    def test_setflags_sealed_publish_does_not_fire(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def publish(key, values):
                    view = values.copy()
                    view.setflags(write=False)
                    _CACHE[key] = view
                """
            },
            rules=["cache-mutation"],
        )
        assert findings == []

    def test_writable_ndarray_publish_still_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def publish(key, values):
                    view = values.copy()
                    view.setflags(write=True)
                    _CACHE[key] = view
                """
            },
            rules=["cache-mutation"],
        )
        assert rules_of(findings) == {"cache-mutation"}


class TestCacheMutation:
    def test_unfrozen_publish_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def publish(key, value):
                    _CACHE[key] = [value]
                """
            },
            rules=["cache-mutation"],
        )
        assert rules_of(findings) == {"cache-mutation"}
        assert "not provably frozen" in findings[0].message

    def test_frozen_publishes_do_not_fire(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                from dataclasses import dataclass
                from types import MappingProxyType

                _CACHE = {}

                @dataclass(frozen=True)
                class Entry:
                    value: float

                def publish_tuple(key, value):
                    _CACHE[key] = (value,)

                def publish_proxy(key, mapping):
                    _CACHE[key] = MappingProxyType(mapping)

                def publish_dataclass(key, value):
                    _CACHE[key] = Entry(value)

                def publish_sealed(key, table):
                    table.seal()
                    _CACHE[key] = table
                """
            },
            rules=["cache-mutation"],
        )
        assert findings == []

    def test_mutating_a_cache_lookup_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)
                """,
                "src/repro/baselines/consumer.py": """
                from repro.sim.tables import lookup

                def consume(key):
                    table = lookup(key)
                    table.append(1)
                    return table
                """,
            },
            rules=["cache-mutation"],
        )
        assert rules_of(findings) == {"cache-mutation"}
        (finding,) = findings
        assert finding.path == "src/repro/baselines/consumer.py"
        assert "lookup" in finding.message

    def test_mutating_a_copy_does_not_fire(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)
                """,
                "src/repro/baselines/consumer.py": """
                from repro.sim.tables import lookup

                def consume(key):
                    table = lookup(key)
                    mine = list(table)
                    mine.append(1)
                    return mine
                """,
            },
            rules=["cache-mutation"],
        )
        assert findings == []

    def test_accessor_chain_propagates(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)

                def true_points(key):
                    return lookup(key)
                """,
                "src/repro/baselines/consumer.py": """
                from repro.sim.tables import true_points

                def consume(key):
                    points = true_points(key)
                    points.sort()
                    return points
                """,
            },
            rules=["cache-mutation"],
        )
        assert rules_of(findings) == {"cache-mutation"}
        assert "true_points" in findings[0].message

    def test_subscript_store_into_lookup_fires(self, lint_program):
        findings = lint_program(
            {
                "src/repro/sim/tables.py": """
                _CACHE = {}

                def lookup(key):
                    return _CACHE.get(key)

                def poison(key):
                    table = lookup(key)
                    table[0] = None
                """
            },
            rules=["cache-mutation"],
        )
        assert rules_of(findings) == {"cache-mutation"}


class TestRepoTipIsClean:
    """The acceptance claim: the engine's real shared state obeys all
    three disciplines (the optables publish is sealed, every global
    touch is lock-guarded, no caller mutates a cached table)."""

    @pytest.mark.parametrize(
        "relative",
        [
            "src/repro/sim/optables.py",
            "src/repro/sim/optstore.py",
            "src/repro/cacheconf.py",
            "src/repro/arch/fabric.py",
            "src/repro/experiments/stats.py",
            "src/repro/cloud/provider.py",
            "src/repro/runtime/optimizer.py",
        ],
    )
    def test_engine_module_lints_clean(self, relative):
        path = REPO_ROOT / relative
        context = FileContext(relative, path.read_text(encoding="utf-8"))
        effect_rules = [
            rule
            for rule in ALL_RULES
            if rule.id
            in {"worker-global-write", "lock-discipline", "cache-mutation"}
        ]
        findings = check_program([context], effect_rules)
        findings += check_file(context, effect_rules)
        assert findings == []

    def test_whole_src_tree_runs_the_effect_rules_clean(self):
        findings = scan_paths(
            [REPO_ROOT / "src"], ALL_RULES, root=REPO_ROOT
        )
        effect_findings = [
            f
            for f in findings
            if f.rule
            in {"worker-global-write", "lock-discipline", "cache-mutation"}
        ]
        assert effect_findings == []
