"""Trigger / no-trigger fixtures for every determinism rule."""


class TestUnseededRandom:
    def test_module_level_random_triggers(self, lint_source):
        findings = lint_source(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_module_level_randint_triggers(self, lint_source):
        findings = lint_source(
            """
            import random

            def pick():
                return random.randint(0, 3)
            """
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_numpy_global_generator_triggers(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def noise():
                return np.random.normal()
            """
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_from_import_triggers(self, lint_source):
        findings = lint_source(
            """
            from random import gauss

            def noise():
                return gauss(0.0, 1.0)
            """
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_seeded_generator_is_clean(self, lint_source):
        findings = lint_source(
            """
            import random

            def make_rng(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert findings == []

    def test_numpy_default_rng_is_clean(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """
        )
        assert findings == []

    def test_mt19937_bit_generator_is_clean(self, lint_source):
        """The trace generator's word-stream decoder builds a raw
        MT19937 bit generator and seeds it from an explicit CPython RNG
        state — a seeded factory, not the legacy global generator."""
        findings = lint_source(
            """
            import numpy as np

            def make_stream(state):
                bitgen = np.random.MT19937()
                bitgen.state = {"bit_generator": "MT19937", "state": state}
                return bitgen
            """
        )
        assert findings == []

    def test_numpy_global_random_still_triggers(self, lint_source):
        findings = lint_source(
            """
            import numpy as np

            def noise():
                return np.random.random()
            """
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_out_of_scope_directory_is_clean(self, lint_source):
        findings = lint_source(
            """
            import random

            def jitter():
                return random.random()
            """,
            path="src/repro/experiments/stats.py",
        )
        assert findings == []


class TestWallClock:
    def test_time_time_triggers(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_datetime_now_triggers(self, lint_source):
        findings = lint_source(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_from_import_perf_counter_triggers(self, lint_source):
        findings = lint_source(
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_simulated_time_is_clean(self, lint_source):
        findings = lint_source(
            """
            def advance(cycle, interval_cycles):
                return cycle + interval_cycles
            """
        )
        assert findings == []

    def test_benchmark_timing_out_of_scope_is_clean(self, lint_source):
        findings = lint_source(
            """
            import time

            def wall():
                return time.perf_counter()
            """,
            path="src/repro/experiments/stats.py",
        )
        assert findings == []


class TestEnvRead:
    def test_environ_access_triggers(self, lint_source):
        findings = lint_source(
            """
            import os

            def debug_enabled():
                return os.environ.get("DEBUG") == "1"
            """
        )
        assert [f.rule for f in findings] == ["env-read"]

    def test_getenv_triggers(self, lint_source):
        findings = lint_source(
            """
            import os

            def debug_enabled():
                return os.getenv("DEBUG")
            """
        )
        assert [f.rule for f in findings] == ["env-read"]

    def test_explicit_config_is_clean(self, lint_source):
        findings = lint_source(
            """
            def debug_enabled(config):
                return config.debug
            """
        )
        assert findings == []


class TestCloudScope:
    """The provider loop (``src/repro/cloud/``) is engine territory too."""

    def test_unseeded_random_triggers_in_cloud(self, lint_source):
        findings = lint_source(
            """
            import random

            def jitter():
                return random.random()
            """,
            path="src/repro/cloud/provider.py",
        )
        assert [f.rule for f in findings] == ["unseeded-random"]

    def test_wall_clock_triggers_in_cloud(self, lint_source):
        findings = lint_source(
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/cloud/admission.py",
        )
        assert [f.rule for f in findings] == ["wall-clock"]

    def test_env_read_triggers_in_cloud(self, lint_source):
        findings = lint_source(
            """
            import os

            def debug_enabled():
                return os.getenv("DEBUG")
            """,
            path="src/repro/cloud/tenant.py",
        )
        assert [f.rule for f in findings] == ["env-read"]

    def test_seeded_provider_rng_is_clean(self, lint_source):
        findings = lint_source(
            """
            import random

            def make_rng(seed):
                return random.Random(seed)
            """,
            path="src/repro/cloud/provider.py",
        )
        assert findings == []


class TestSetIteration:
    def test_for_over_set_call_triggers(self, lint_source):
        findings = lint_source(
            """
            def emit(configs):
                for config in set(configs):
                    print(config)
            """
        )
        assert [f.rule for f in findings] == ["set-iteration"]

    def test_list_of_set_triggers(self, lint_source):
        findings = lint_source(
            """
            def emit(configs):
                return list(set(configs))
            """
        )
        assert [f.rule for f in findings] == ["set-iteration"]

    def test_comprehension_over_set_literal_triggers(self, lint_source):
        findings = lint_source(
            """
            def emit(a, b):
                return [x for x in {a, b}]
            """
        )
        assert [f.rule for f in findings] == ["set-iteration"]

    def test_sorted_set_is_clean(self, lint_source):
        findings = lint_source(
            """
            def emit(configs):
                return sorted(set(configs))
            """
        )
        assert findings == []

    def test_membership_test_is_clean(self, lint_source):
        findings = lint_source(
            """
            def contains(base, configs):
                return base in set(configs)
            """
        )
        assert findings == []


class TestIdKeyed:
    def test_id_subscript_triggers(self, lint_source):
        findings = lint_source(
            """
            def remember(cache, obj, value):
                cache[id(obj)] = value
            """
        )
        assert [f.rule for f in findings] == ["id-keyed"]

    def test_id_dict_literal_key_triggers(self, lint_source):
        findings = lint_source(
            """
            def remember(obj, value):
                return {id(obj): value}
            """
        )
        assert [f.rule for f in findings] == ["id-keyed"]

    def test_id_set_add_triggers(self, lint_source):
        findings = lint_source(
            """
            def remember(seen, obj):
                seen.add(id(obj))
            """
        )
        assert [f.rule for f in findings] == ["id-keyed"]

    def test_id_membership_triggers(self, lint_source):
        findings = lint_source(
            """
            def recorded(seen, obj):
                return id(obj) in seen
            """
        )
        assert [f.rule for f in findings] == ["id-keyed"]

    def test_identity_comparison_is_clean(self, lint_source):
        findings = lint_source(
            """
            def same(a, b):
                return id(a) == id(b)
            """
        )
        assert findings == []

    def test_stable_key_is_clean(self, lint_source):
        findings = lint_source(
            """
            def remember(cache, config, value):
                cache[config.name] = value
            """
        )
        assert findings == []
