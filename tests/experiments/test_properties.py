"""Property-based invariants of the closed-loop harness.

These are the conservation laws the whole evaluation rests on: work
executed equals IPC x time leg by leg, money charged equals rate x
time, and no allocator can beat the oracle.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import DEFAULT_CONFIG_SPACE, VCoreConfig
from repro.baselines.oracle import OracleAllocator
from repro.experiments.harness import ThroughputSimulator, qos_target_for
from repro.runtime.optimizer import (
    ConfigPoint,
    IDLE_POINT,
    Schedule,
    ScheduleEntry,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import get_app, make_x264


class _FixedAllocator:
    """Always returns the same schedule (for conservation checks)."""

    name = "Fixed"

    def __init__(self, schedule):
        self.schedule = schedule

    def decide(self, measurement, true_points):
        return self.schedule


def single_config_schedule(config):
    point = ConfigPoint(
        config=config,
        speedup=1.0,
        cost_rate=config.cost_rate(DEFAULT_COST_MODEL),
    )
    return Schedule(entries=(ScheduleEntry(point, 1.0),))


CONFIG_STRATEGY = st.builds(
    VCoreConfig,
    slices=st.integers(1, 8),
    l2_kb=st.sampled_from([64 * 2 ** i for i in range(8)]),
)


class TestConservation:
    @settings(max_examples=10, deadline=None)
    @given(config=CONFIG_STRATEGY)
    def test_money_equals_rate_times_time(self, config):
        """With a fixed single-config schedule, the mean cost rate is
        exactly the configuration's rate."""
        app = get_app("hmmer")
        sim = ThroughputSimulator(
            app=app,
            qos_goal=0.5,
            noise_std_frac=0.0,
            interval_cycles=2.0e5,
        )
        result = sim.run(_FixedAllocator(single_config_schedule(config)), 30)
        expected = config.cost_rate(DEFAULT_COST_MODEL)
        assert result.mean_cost_rate == pytest.approx(expected, rel=1e-6)

    @settings(max_examples=10, deadline=None)
    @given(config=CONFIG_STRATEGY)
    def test_work_equals_ipc_times_time(self, config):
        """Delivered QoS on a fixed config equals the model's IPC for
        the phase being executed (steady state, no reconfigurations)."""
        app = get_app("hmmer")
        sim = ThroughputSimulator(
            app=app,
            qos_goal=0.5,
            noise_std_frac=0.0,
            interval_cycles=2.0e5,
        )
        result = sim.run(_FixedAllocator(single_config_schedule(config)), 20)
        # Skip the first interval (it may carry a reconfiguration stall).
        for record in result.records[1:]:
            phase = next(p for p in app.phases if p.name == record.phase_name)
            expected = DEFAULT_PERF_MODEL.ipc(phase, config)
            assert record.true_qos == pytest.approx(expected, rel=1e-3)

    def test_idle_executes_nothing_and_costs_nothing(self):
        app = get_app("hmmer")
        sim = ThroughputSimulator(
            app=app, qos_goal=0.5, noise_std_frac=0.0
        )
        schedule = Schedule(entries=(ScheduleEntry(IDLE_POINT, 1.0),))
        result = sim.run(_FixedAllocator(schedule), 10)
        assert result.mean_cost_rate == 0.0
        assert all(record.true_qos == 0.0 for record in result.records)


class TestOracleDominance:
    @settings(max_examples=6, deadline=None)
    @given(margin=st.floats(min_value=0.5, max_value=0.95))
    def test_no_single_config_beats_the_oracle(self, margin):
        """For any QoS level, the oracle's cost is at most the cost of
        the cheapest fixed configuration that meets it."""
        app = make_x264()
        goal = qos_target_for(app, margin=margin)
        sim = ThroughputSimulator(app=app, qos_goal=goal, noise_std_frac=0.0)
        oracle_run = sim.run(OracleAllocator(qos_goal=goal), 120)
        feasible = [
            config
            for config in DEFAULT_CONFIG_SPACE
            if all(
                DEFAULT_PERF_MODEL.ipc(phase, config) >= goal
                for phase in app.phases
            )
        ]
        if not feasible:
            return
        cheapest = min(c.cost_rate(DEFAULT_COST_MODEL) for c in feasible)
        assert oracle_run.mean_cost_rate <= cheapest * 1.001


class TestDisturbanceRobustness:
    def test_runtime_survives_measurement_spikes(self):
        """δq disturbances (page faults, Eqn. 3): occasional wild
        measurements must not destabilize the runtime."""
        import random

        from repro.arch.cost import DEFAULT_COST_MODEL
        from repro.runtime.cash import (
            CASHRuntime,
            LegObservation,
            QoSMeasurement,
        )

        configs = [
            VCoreConfig(1, 64),
            VCoreConfig(2, 128),
            VCoreConfig(4, 256),
            VCoreConfig(8, 512),
        ]
        true_qos = {
            configs[0]: 0.6, configs[1]: 1.1,
            configs[2]: 1.9, configs[3]: 2.6,
        }
        runtime = CASHRuntime(
            configs=configs,
            cost_rates=[c.cost_rate(DEFAULT_COST_MODEL) for c in configs],
            qos_goal=1.5,
            base_config=configs[0],
            initial_base_qos=0.5,
            explore=False,
        )
        rng = random.Random(3)
        measurement = None
        deliveries = []
        for step in range(120):
            decision = runtime.step(measurement)
            total = 0.0
            legs = []
            for entry in decision.schedule.entries:
                q = 0.0 if entry.point.is_idle else true_qos[entry.point.config]
                total += q * entry.fraction
                legs.append(
                    LegObservation(entry.point.config, entry.fraction, q)
                )
            observed = total
            if rng.random() < 0.05:  # a page-fault-like outlier
                observed = total * rng.choice([0.1, 3.0])
            measurement = QoSMeasurement(
                overall_qos=observed,
                legs=tuple(legs),
                signature=(0.3, 0.1, 0.03),
            )
            deliveries.append(total)
        tail = deliveries[-40:]
        violations = sum(q < 1.5 * 0.95 for q in tail)
        assert violations <= 6


class TestPriceInvariance:
    def test_conclusions_survive_price_rescaling(self):
        """Section VI-B: 'the absolute value of the price does not
        affect our conclusions' — scaling all prices scales every cost
        but leaves every ratio unchanged."""
        from repro.arch.cost import CostModel
        from repro.baselines.race import RaceToIdleAllocator, worst_case_config

        app = get_app("bzip")
        goal = qos_target_for(app)
        doubled = CostModel(
            slice_price_per_hour=2 * 0.0098,
            l2_price_per_64kb_hour=2 * 0.0032,
        )
        ratios = []
        for cost_model in (None, doubled):
            kwargs = {"cost_model": cost_model} if cost_model else {}
            sim = ThroughputSimulator(
                app=app, qos_goal=goal, noise_std_frac=0.0, **kwargs
            )
            oracle_run = sim.run(OracleAllocator(qos_goal=goal), 150)
            sim2 = ThroughputSimulator(
                app=app, qos_goal=goal, noise_std_frac=0.0, **kwargs
            )
            config = worst_case_config(
                app, goal, DEFAULT_PERF_MODEL,
                cost_model=cost_model or DEFAULT_COST_MODEL,
            )
            race_run = sim2.run(
                RaceToIdleAllocator(
                    config=config,
                    qos_goal=goal,
                    cost_model=cost_model or DEFAULT_COST_MODEL,
                ),
                150,
            )
            ratios.append(race_run.mean_cost_rate / oracle_run.mean_cost_rate)
        assert ratios[0] == pytest.approx(ratios[1], rel=1e-9)
