"""Figure data export."""

import os

import pytest

from repro.experiments.figures import (
    EXPORTERS,
    export_fig1,
    export_fig9,
    export_fig2_fig8,
)


class TestFig1Export:
    def test_writes_one_file_per_phase_plus_summary(self, tmp_path):
        paths = export_fig1(str(tmp_path))
        assert len(paths) == 11
        assert all(os.path.exists(path) for path in paths)

    def test_grid_file_has_64_rows(self, tmp_path):
        paths = export_fig1(str(tmp_path))
        with open(paths[0]) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0] == "slices\tl2_kb\tipc"
        assert len(lines) == 1 + 64

    def test_summary_records_six_nonconvex_phases(self, tmp_path):
        paths = export_fig1(str(tmp_path))
        summary = [p for p in paths if p.endswith("fig1_summary.tsv")][0]
        with open(summary) as handle:
            lines = handle.read().strip().splitlines()[1:]
        nonconvex = sum(1 for line in lines if int(line.split("\t")[-1]) > 0)
        assert nonconvex == 6


class TestTimeseriesExports:
    def test_fig8_columns(self, tmp_path):
        paths = export_fig2_fig8(str(tmp_path), intervals=30)
        with open(paths[0]) as handle:
            header = handle.readline().strip().split("\t")
        assert header[0] == "cycles"
        assert any("CASH_cost_rate" in column for column in header)

    def test_fig9_includes_request_rate(self, tmp_path):
        paths = export_fig9(str(tmp_path), intervals=16)
        with open(paths[0]) as handle:
            header = handle.readline().strip().split("\t")
            first = handle.readline().strip().split("\t")
        assert header[1] == "request_rate"
        assert float(first[1]) > 0

    def test_exporters_registry(self):
        assert set(EXPORTERS) >= {"fig1", "fig7", "fig8", "fig9", "fig10", "tab3"}
