"""The struct-of-arrays batch tier in the sweep machinery.

Two layers: the dispatch plumbing (``TierBatchSpec`` through
``run_cell``, contiguous grouping in ``_group_tier_batches``,
``run_cells(tier_batch=True)`` flattening) and the acceptance
criterion — the batched tier-agreement grid is bit-identical to the
per-cell object-pipeline grid for *every* cell, at ``jobs`` 1 and 4,
plain or ``REPRO_SANITIZE=1`` (CI runs this module in both modes).
"""

import pytest

from repro.arch.vcore import VCoreConfig
from repro.experiments.scenarios import (
    run_tier_batch,
    run_tier_cell,
    tier_agreement_grid,
)
from repro.experiments.stats import (
    TierBatchSpec,
    TierCellSpec,
    _group_tier_batches,
    run_cell,
    run_cells,
)

SMALL = dict(instructions=400, seed=0)


def spec_of(app_name, phase_index, slices, l2_kb):
    return TierCellSpec(
        app_name=app_name,
        phase_index=phase_index,
        config=VCoreConfig(slices=slices, l2_kb=l2_kb),
        **SMALL,
    )


class TestTierBatchSpec:
    def test_run_cell_dispatch_matches_single_cells(self):
        specs = (
            spec_of("x264", 0, 1, 64),
            spec_of("x264", 0, 2, 128),
            spec_of("mcf", 1, 4, 256),
        )
        batched = run_cell(TierBatchSpec(cells=specs))
        assert isinstance(batched, tuple)
        singles = [
            run_tier_cell(
                spec.app_name,
                spec.phase_index,
                spec.config,
                instructions=spec.instructions,
                seed=spec.seed,
            )
            for spec in specs
        ]
        assert list(batched) == singles

    def test_run_tier_batch_rejects_bad_phase_index(self):
        with pytest.raises(ValueError, match="phases"):
            run_tier_batch([spec_of("x264", 99, 1, 64)])

    def test_grouping_is_contiguous_and_balanced(self):
        specs = [spec_of("x264", 0, 1, 64) for _ in range(7)]
        grouped, slots = _group_tier_batches(list(specs), jobs=3)
        assert [len(batch.cells) for batch in grouped] == [3, 2, 2]
        assert slots == [[0, 1, 2], [3, 4], [5, 6]]
        assert [cell for batch in grouped for cell in batch.cells] == specs

    def test_single_tier_cell_passes_through_ungrouped(self):
        specs = [spec_of("x264", 0, 1, 64)]
        grouped, slots = _group_tier_batches(list(specs), jobs=4)
        assert grouped == specs
        assert slots == [[0]]

    def test_run_cells_tier_batch_matches_plain(self):
        specs = [
            spec_of("apache", phase_index, slices, 64 * slices)
            for phase_index in (0, 1)
            for slices in (1, 2, 4)
        ]
        plain = run_cells(specs, jobs=1)
        batched = run_cells(specs, jobs=1, tier_batch=True)
        sharded = run_cells(specs, jobs=2, tier_batch=True)
        assert batched == plain
        assert sharded == plain


class TestGridParityAcceptance:
    """The PR's acceptance bar: full-grid bit-identity, jobs 1 and 4."""

    @pytest.fixture(scope="class")
    def reference_grid(self):
        results, timing = tier_agreement_grid(jobs=1, batch=False)
        assert timing["batch"] is False
        return results

    def test_batched_grid_is_bit_identical_jobs1(self, reference_grid):
        results, timing = tier_agreement_grid(jobs=1, batch=True)
        assert timing["batch"] is True
        assert results == reference_grid

    def test_batched_grid_is_bit_identical_jobs4(self, reference_grid):
        results, _ = tier_agreement_grid(jobs=4, batch=True)
        assert results == reference_grid
