"""The sanitizer observes; it never changes a result.

The acceptance claim for ``REPRO_SANITIZE=1``: the full engine runs
with every runtime check armed — freeze-on-publish verification on the
table cache, fabric shadow recounts, RNG checkpoint probes — without a
single violation, and every output is bit-identical to the unsanitized
run, across FAST on/off and ``jobs`` ∈ {1, 4}.

Workers inherit the sanitizer through both the module flag (fork) and
the ``REPRO_SANITIZE`` environment variable (spawn), so the parallel
cells here really do run their checks inside the pool processes.
"""

import pytest

from repro import perf
from repro.analysis import sanitize
from repro.experiments.scenarios import run_app_with_allocator
from repro.experiments.stats import CellSpec, run_cells
from repro.sim.optables import cache_clear

SPECS = tuple(
    CellSpec(app_name=app, kind=kind, intervals=40, seed=seed)
    for app, kind in (("x264", "cash"), ("apache", "optimal"))
    for seed in (0, 1)
)


@pytest.fixture(autouse=True)
def restore_modes(monkeypatch):
    # Capture the flag before the test (and before monkeypatch touches
    # REPRO_SANITIZE): this teardown runs while the monkeypatched env
    # is still in place, so re-reading os.environ here would leak a
    # test-local setenv into the rest of the session.
    previous = sanitize.ENABLED
    yield
    perf.set_fast_paths(True)
    sanitize.set_enabled(previous)
    cache_clear()


def run_cell_outputs(app_name, kind):
    result = run_app_with_allocator(app_name, kind, intervals=60, seed=0)
    return (
        result.mean_cost_rate,
        result.cost_dollars,
        result.violation_percent,
        tuple(result.records),
    )


class TestSanitizerIsPureObservation:
    @pytest.mark.parametrize(
        "app_name,kind", [("x264", "cash"), ("mcf", "race")]
    )
    def test_sanitized_run_identical_fast_on(self, app_name, kind):
        with perf.fast_paths(True):
            cache_clear()
            with sanitize.sanitized(False):
                plain = run_cell_outputs(app_name, kind)
            cache_clear()
            with sanitize.sanitized(True):
                checked = run_cell_outputs(app_name, kind)
        assert plain == checked

    def test_sanitized_run_identical_fast_off(self):
        with perf.fast_paths(False):
            with sanitize.sanitized(False):
                plain = run_cell_outputs("x264", "cash")
            with sanitize.sanitized(True):
                checked = run_cell_outputs("x264", "cash")
        assert plain == checked

    def test_sanitized_fast_matches_sanitized_reference(self):
        with sanitize.sanitized(True):
            with perf.fast_paths(True):
                cache_clear()
                fast = run_cell_outputs("x264", "cash")
            with perf.fast_paths(False):
                reference = run_cell_outputs("x264", "cash")
        assert fast == reference


class TestSanitizedParallelSweeps:
    def test_jobs_invisible_under_sanitizer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitize.set_enabled(True)
        serial = run_cells(SPECS, jobs=1)
        parallel = run_cells(SPECS, jobs=4)
        for left, right in zip(serial, parallel):
            assert left.app_name == right.app_name
            assert left.mean_cost_rate == right.mean_cost_rate
            assert left.violation_percent == right.violation_percent
            assert left.records == right.records

    def test_sanitized_sweep_matches_unsanitized(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sanitize.set_enabled(False)
        plain = run_cells(SPECS, jobs=4)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sanitize.set_enabled(True)
        checked = run_cells(SPECS, jobs=4)
        for left, right in zip(plain, checked):
            assert left.mean_cost_rate == right.mean_cost_rate
            assert left.records == right.records
