"""The shared store tiers never change a result.

Every cell set here is run against the scalar reference (fast paths
off, serial) and must match record-for-record from every tier state —
cold, shm-warm, disk-warm — at any job count, sanitized or not.  With
fast paths off the tiers must not even be consulted.
"""

import pytest

from repro import cacheconf, perf
from repro.analysis import sanitize
from repro.experiments.scenarios import warm_app_surfaces
from repro.experiments.stats import CellSpec, run_cells
from repro.sim import optstore
from repro.sim.optables import cache_clear, cache_info

SPECS = tuple(
    CellSpec(app_name=app, kind=kind, intervals=30, seed=seed)
    for app, kind, seed in (
        ("x264", "cash", 0),
        ("x264", "optimal", 1),
        ("apache", "cash", 0),
    )
)
APPS = tuple(sorted({spec.app_name for spec in SPECS}))


@pytest.fixture(autouse=True)
def pristine_tiers():
    previous = perf.FAST
    previous_sanitize = sanitize.ENABLED
    perf.set_fast_paths(True)
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    yield
    cache_clear()
    optstore.destroy()
    optstore.reset_counters()
    cacheconf.set_cache_dir(None)
    sanitize.set_enabled(previous_sanitize)
    perf.set_fast_paths(previous)


@pytest.fixture(scope="module")
def reference():
    """Scalar-reference results: fast paths off, serial."""
    cache_clear()
    with perf.fast_paths(False):
        return run_cells(SPECS, jobs=1)


def assert_identical(results, reference):
    assert len(results) == len(reference)
    for left, right in zip(results, reference):
        assert left.app_name == right.app_name
        assert left.mean_cost_rate == right.mean_cost_rate
        assert left.cost_dollars == right.cost_dollars
        assert left.violation_percent == right.violation_percent
        assert left.records == right.records


class TestTierStatesMatchReference:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_cold(self, jobs, reference):
        assert_identical(run_cells(SPECS, jobs=jobs), reference)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_shm_warm(self, jobs, reference):
        if optstore.ensure() is None:  # pragma: no cover - no shm
            pytest.skip("no shared memory on this platform")
        for app in APPS:
            warm_app_surfaces(app)
        cache_clear()  # drop L1 so the run must attach via shm
        optstore.reset_counters(fleet=True)
        assert_identical(run_cells(SPECS, jobs=jobs), reference)
        assert optstore.counters_fleet()["l2_hits"] >= 1
        assert optstore.counters_fleet()["builds"] == 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_disk_warm(self, jobs, reference, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        for app in APPS:
            warm_app_surfaces(app)
        cache_clear()
        optstore.destroy()  # shm gone: only the disk tier stays warm
        optstore.reset_counters()
        assert_identical(run_cells(SPECS, jobs=jobs), reference)
        assert optstore.counters_fleet()["l3_hits"] >= 1
        assert optstore.counters_fleet()["builds"] == 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sanitized_warm(self, jobs, reference, tmp_path):
        cacheconf.set_cache_dir(tmp_path)
        with sanitize.sanitized(True):
            for app in APPS:
                warm_app_surfaces(app)
            cache_clear()
            assert_identical(run_cells(SPECS, jobs=jobs), reference)


class TestReferenceModeBypassesTiers:
    def test_fast_off_touches_no_tier(self, tmp_path, reference):
        cacheconf.set_cache_dir(tmp_path)
        with perf.fast_paths(False):
            assert_identical(run_cells(SPECS, jobs=1), reference)
        counts = optstore.counters_local()
        assert all(value == 0 for value in counts.values())
        assert cache_info()["size"] == 0
        assert list(tmp_path.iterdir()) == []
