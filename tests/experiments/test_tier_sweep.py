"""The sharded tier-agreement sweep: specs, dispatch, and the report."""

import json

from repro.arch.vcore import VCoreConfig
from repro.experiments.report import tier_table
from repro.experiments.scenarios import (
    TIER_APPS,
    TIER_CONFIGS,
    run_tier_cell,
    tier_agreement_grid,
)
from repro.experiments.stats import (
    TierCellSpec,
    record_bench_cycle,
    run_cell,
    run_cells,
)
from repro.sim.ssim import CycleResult


class TestTierCellSpec:
    def test_run_cell_dispatches_tier_specs(self):
        spec = TierCellSpec(
            app_name="apache",
            phase_index=0,
            config=VCoreConfig(2, 128),
            instructions=600,
        )
        result = run_cell(spec)
        assert isinstance(result, CycleResult)
        assert result.pipeline.instructions == 600
        assert result.pipeline.config == VCoreConfig(2, 128)

    def test_spec_matches_direct_call(self):
        spec = TierCellSpec(
            app_name="mcf",
            phase_index=1,
            config=VCoreConfig(4, 256),
            instructions=600,
            seed=3,
        )
        direct = run_tier_cell(
            "mcf", 1, VCoreConfig(4, 256), instructions=600, seed=3
        )
        assert run_cell(spec) == direct

    def test_phase_index_out_of_range_rejected(self):
        try:
            run_tier_cell("apache", 99, VCoreConfig(1, 64), instructions=100)
        except ValueError as error:
            assert "phase" in str(error)
        else:  # pragma: no cover - the assertion documents the contract
            raise AssertionError("expected ValueError")

    def test_specs_pickle_through_worker_pool(self):
        specs = [
            TierCellSpec(
                app_name="apache",
                phase_index=index,
                config=config,
                instructions=400,
            )
            for index in (0, 1)
            for config in (VCoreConfig(1, 64), VCoreConfig(2, 128))
        ]
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=2)
        assert serial == parallel


class TestTierAgreementGrid:
    def test_grid_shape_and_keys(self):
        results, timing = tier_agreement_grid(
            app_names=("apache",), instructions=400, jobs=1
        )
        assert len(results) == 2 * len(TIER_CONFIGS)  # apache has 2 phases
        for (app_name, phase_index, config), cell in results.items():
            assert app_name == "apache"
            assert phase_index in (0, 1)
            assert config in TIER_CONFIGS
            assert isinstance(cell, CycleResult)
        assert timing["cells"] == len(results)
        assert timing["instructions"] == 400
        assert timing["apps"] == ["apache"]

    def test_jobs_invisible_in_results(self):
        serial, _ = tier_agreement_grid(
            app_names=("apache", "mcf"), instructions=400, jobs=1
        )
        parallel, _ = tier_agreement_grid(
            app_names=("apache", "mcf"), instructions=400, jobs=3
        )
        assert list(serial) == list(parallel)
        assert serial == parallel

    def test_default_apps_cover_the_tier_grid(self):
        assert set(TIER_APPS) == {"x264", "apache", "mcf"}
        assert [config.slices for config in TIER_CONFIGS] == [1, 2, 4, 8]


class TestTierTable:
    def test_table_rows_and_footer(self):
        results, _ = tier_agreement_grid(
            app_names=("apache",), instructions=400, jobs=1
        )
        table = tier_table(results)
        lines = table.splitlines()
        assert "err %" in lines[0]
        assert len(lines) == 2 + len(results) + 2  # header, rule, footer
        assert lines[-2].startswith("mean |err|")
        assert lines[-1].startswith("max |err|")

    def test_empty_results_render_header_only(self):
        table = tier_table({})
        assert len(table.splitlines()) == 2


class TestRecordBenchCycle:
    def test_writes_and_merges_sections(self, tmp_path):
        target = tmp_path / "BENCH_CYCLE.json"
        record_bench_cycle("first", {"a": 1}, path=str(target))
        record_bench_cycle("second", {"b": 2}, path=str(target))
        data = json.loads(target.read_text())
        assert data == {"first": {"a": 1}, "second": {"b": 2}}
