"""Canonical experiment scenarios and reporting."""

import math

import pytest

from repro.experiments.harness import RunResult
from repro.experiments.report import (
    cost_table,
    geomean_costs,
    mean_violations,
    per_app_table,
    timeseries_table,
)
from repro.experiments.scenarios import (
    ALLOCATOR_KINDS,
    ARCHITECTURE_KINDS,
    apache_timeseries,
    compare_allocators,
    compare_architectures,
    geometric_mean,
    run_app_with_allocator,
    x264_timeseries,
)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestRunAppWithAllocator:
    def test_throughput_app_runs(self):
        result = run_app_with_allocator("x264", "optimal", intervals=80)
        assert isinstance(result, RunResult)
        assert result.app_name == "x264"
        assert result.num_intervals == 80

    def test_latency_app_runs(self):
        result = run_app_with_allocator("apache", "race", intervals=60)
        assert result.app_name == "apache"
        assert result.violation_rate == 0.0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            run_app_with_allocator("x264", "psychic", intervals=10)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            run_app_with_allocator("doom", "optimal", intervals=10)

    def test_all_four_kinds_run_on_one_app(self):
        for kind, _label in ALLOCATOR_KINDS:
            result = run_app_with_allocator("hmmer", kind, intervals=60)
            assert result.cost_dollars > 0


class TestComparisons:
    def test_compare_allocators_structure(self):
        results = compare_allocators(app_names=["hmmer"], intervals=60)
        assert set(results) == {label for _, label in ALLOCATOR_KINDS}
        assert set(results["Optimal"]) == {"hmmer"}

    def test_optimal_is_cheapest(self):
        results = compare_allocators(app_names=["bzip"], intervals=200)
        optimal = results["Optimal"]["bzip"].cost_dollars
        for label in ("Race to Idle", "CASH"):
            assert results[label]["bzip"].cost_dollars >= optimal * 0.999

    def test_compare_architectures_structure(self):
        results = compare_architectures(app_names=["hmmer"], intervals=60)
        assert set(results) == {label for _, _, label in ARCHITECTURE_KINDS}

    def test_coarse_race_is_most_expensive(self):
        """Fig. 10's headline: fine-grain + adaptive beats coarse+race."""
        results = compare_architectures(app_names=["bzip"], intervals=200)
        coarse = results["CoarseGrain race"]["bzip"].cost_dollars
        cash = results["CASH"]["bzip"].cost_dollars
        assert cash < coarse


class TestTimeseries:
    def test_x264_timeseries(self):
        results = x264_timeseries(intervals=40)
        assert set(results) == {"Convex Optimization", "Race to Idle", "CASH"}
        for run in results.values():
            assert run.num_intervals == 40

    def test_apache_timeseries(self):
        results = apache_timeseries(intervals=40)
        for run in results.values():
            assert run.records[0].request_rate > 0


class TestReportFormatting:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_allocators(app_names=["hmmer"], intervals=50)

    def test_cost_table(self, results):
        table = cost_table(results)
        assert "Optimal" in table and "CASH" in table
        assert "Ratio" in table

    def test_per_app_table(self, results):
        table = per_app_table(results)
        assert "hmmer" in table
        assert "geomean" in table

    def test_geomean_and_violations(self, results):
        geo = geomean_costs(results)
        violations = mean_violations(results)
        assert set(geo) == set(results)
        assert all(v >= 0 for v in violations.values())

    def test_timeseries_table(self):
        results = x264_timeseries(intervals=30)
        table = timeseries_table(results, stride=10)
        assert "Mcycles" in table
        assert len(table.splitlines()) >= 3
