"""Multi-seed statistics."""

import pytest

from repro.experiments.stats import Summary, run_across_seeds


class TestSummary:
    def test_mean_and_std(self):
        summary = Summary(values=(1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.min == 1.0 and summary.max == 3.0

    def test_single_value_has_zero_std(self):
        assert Summary(values=(5.0,)).std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Summary(values=())

    def test_str(self):
        assert "±" in str(Summary(values=(1.0, 2.0)))


class TestRunAcrossSeeds:
    def test_collects_all_seeds(self):
        result = run_across_seeds("hmmer", "optimal", seeds=(0, 1), intervals=40)
        assert result.seeds == (0, 1)
        assert len(result.cost.values) == 2

    def test_oracle_is_seed_stable(self):
        """The oracle's decisions don't depend on measurement noise, so
        costs across seeds differ only through noise in execution —
        which the oracle's true-point planning ignores entirely."""
        result = run_across_seeds(
            "hmmer", "optimal", seeds=(0, 1, 2), intervals=60
        )
        assert result.cost.std / result.cost.mean < 0.02

    def test_cash_seed_spread_is_bounded(self):
        result = run_across_seeds("bzip", "cash", seeds=(0, 1), intervals=300)
        assert result.cost.std / result.cost.mean < 0.30

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            run_across_seeds("hmmer", "optimal", seeds=())


class TestSummaryMedian:
    def test_odd_count(self):
        assert Summary(values=(3.0, 1.0, 2.0)).median == 2.0

    def test_even_count_averages_middle_two(self):
        assert Summary(values=(4.0, 1.0, 3.0, 2.0)).median == 2.5

    def test_single_value(self):
        assert Summary(values=(7.0,)).median == 7.0

    def test_robust_to_outlier_unlike_mean(self):
        summary = Summary(values=(1.0, 1.0, 1.0, 100.0))
        assert summary.median == 1.0
        assert summary.mean > 20.0


class TestSummaryCoercion:
    def test_accepts_list_and_freezes_to_tuple(self):
        summary = Summary(values=[1.0, 2.0])
        assert summary.values == (1.0, 2.0)
        assert isinstance(summary.values, tuple)

    def test_accepts_generator(self):
        summary = Summary(values=(v for v in (1.0, 2.0, 3.0)))
        assert summary.mean == 2.0

    def test_hashable_after_coercion(self):
        assert hash(Summary(values=[1.0, 2.0])) == hash(Summary(values=(1.0, 2.0)))
