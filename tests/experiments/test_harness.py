"""The closed-loop evaluation harness."""

import pytest

from repro.arch.vcore import DEFAULT_CONFIG_SPACE, VCoreConfig
from repro.baselines.oracle import OracleAllocator
from repro.baselines.race import RaceToIdleAllocator, worst_case_config
from repro.experiments.harness import (
    CASHAllocator,
    LatencySimulator,
    ThroughputSimulator,
    _PhaseWalker,
    qos_target_for,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import get_app, make_x264
from repro.workloads.requests import OscillatingLoad


class TestQosTarget:
    def test_is_worst_phase_best_ipc_with_margin(self):
        app = make_x264()
        goal = qos_target_for(app, margin=1.0)
        worst_case_best = min(
            max(DEFAULT_PERF_MODEL.ipc(phase, c) for c in DEFAULT_CONFIG_SPACE)
            for phase in app.phases
        )
        assert goal == pytest.approx(worst_case_best)

    def test_margin_scales(self):
        app = make_x264()
        assert qos_target_for(app, margin=0.5) == pytest.approx(
            qos_target_for(app, margin=1.0) * 0.5
        )

    def test_rejects_bad_margin(self):
        with pytest.raises(ValueError):
            qos_target_for(make_x264(), margin=0.0)


class TestPhaseWalker:
    def test_advances_through_phases(self):
        app = make_x264()
        walker = _PhaseWalker(app)
        _, first = walker.current_phase()
        assert first.name == "x264.p1"
        executed, used, crossed = walker.run_cycles(
            1e9, lambda phase: 1.0, stop_at_boundary=True
        )
        assert crossed is True
        assert executed == pytest.approx(first.instructions, rel=1e-6)
        _, second = walker.current_phase()
        assert second.name == "x264.p2"

    def test_respects_cycle_budget(self):
        walker = _PhaseWalker(make_x264())
        executed, used, crossed = walker.run_cycles(1000.0, lambda p: 2.0)
        assert used == pytest.approx(1000.0)
        assert executed == pytest.approx(2000.0)
        assert crossed is False

    def test_zero_ipc_burns_cycles_without_progress(self):
        walker = _PhaseWalker(make_x264())
        executed, used, crossed = walker.run_cycles(500.0, lambda p: 0.0)
        assert executed == 0.0
        assert used == pytest.approx(500.0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            _PhaseWalker(make_x264()).run_cycles(-1.0, lambda p: 1.0)


def make_sim(**overrides):
    app = make_x264()
    defaults = dict(
        app=app,
        qos_goal=qos_target_for(app),
        interval_cycles=2.5e5,
        noise_std_frac=0.02,
    )
    defaults.update(overrides)
    return ThroughputSimulator(**defaults)


class TestThroughputSimulator:
    def test_requires_throughput_app(self):
        with pytest.raises(ValueError):
            ThroughputSimulator(app=get_app("apache"), qos_goal=1.0)

    def test_validation(self):
        app = make_x264()
        with pytest.raises(ValueError):
            ThroughputSimulator(app=app, qos_goal=0.0)
        with pytest.raises(ValueError):
            ThroughputSimulator(app=app, qos_goal=1.0, interval_cycles=0)
        with pytest.raises(ValueError):
            ThroughputSimulator(app=app, qos_goal=1.0, noise_std_frac=-1)
        with pytest.raises(ValueError):
            ThroughputSimulator(app=app, qos_goal=1.0, violation_margin=1.0)

    def test_oracle_run_meets_goal_everywhere(self):
        sim = make_sim()
        result = sim.run(OracleAllocator(qos_goal=sim.qos_goal), intervals=300)
        assert result.violation_rate == 0.0
        assert result.num_intervals == 300

    def test_race_never_violates_and_costs_more(self):
        sim = make_sim()
        config = worst_case_config(sim.app, sim.qos_goal, DEFAULT_PERF_MODEL)
        race = RaceToIdleAllocator(config=config, qos_goal=sim.qos_goal)
        oracle_run = sim.run(OracleAllocator(qos_goal=sim.qos_goal), 300)
        race_run = make_sim().run(race, 300)
        assert race_run.violation_rate == 0.0
        assert race_run.cost_dollars > oracle_run.cost_dollars

    def test_intervals_never_straddle_phases(self):
        """Each recorded interval belongs to exactly one phase."""
        sim = make_sim()
        result = sim.run(OracleAllocator(qos_goal=sim.qos_goal), intervals=400)
        boundaries = 0
        for record in result.records:
            assert record.cycles <= sim.interval_cycles + 1
            if record.cycles < sim.interval_cycles - 1:
                boundaries += 1
        assert boundaries >= 3  # x264 changes phase often enough

    def test_deterministic_by_seed(self):
        a = make_sim(seed=5).run(OracleAllocator(qos_goal=make_sim().qos_goal), 50)
        b = make_sim(seed=5).run(OracleAllocator(qos_goal=make_sim().qos_goal), 50)
        assert a.cost_dollars == b.cost_dollars

    def test_warmup_not_recorded(self):
        sim = make_sim()
        result = sim.run(
            OracleAllocator(qos_goal=sim.qos_goal), intervals=50,
            warmup_intervals=100,
        )
        assert result.num_intervals == 50
        assert result.records[0].start_cycle == 0.0

    def test_cash_allocator_integrates(self):
        sim = make_sim()
        allocator = CASHAllocator(
            configs=list(DEFAULT_CONFIG_SPACE), qos_goal=sim.qos_goal
        )
        result = sim.run(allocator, intervals=120)
        assert result.cost_dollars > 0
        assert result.allocator_name == "CASH"

    def test_cost_rate_series_lengths(self):
        sim = make_sim()
        result = sim.run(OracleAllocator(qos_goal=sim.qos_goal), 60)
        assert len(result.cost_rate_series()) == 60
        assert len(result.normalized_performance_series()) == 60
        assert len(result.time_axis_mcycles()) == 60


class TestLatencySimulator:
    def _sim(self, **overrides):
        app = get_app("apache")
        defaults = dict(
            app=app,
            load=OscillatingLoad(),
            target_latency_cycles=110_000.0,
        )
        defaults.update(overrides)
        return LatencySimulator(**defaults)

    def test_requires_latency_app(self):
        with pytest.raises(ValueError):
            LatencySimulator(
                app=make_x264(), load=OscillatingLoad(),
                target_latency_cycles=1e5,
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            self._sim(target_latency_cycles=0)
        with pytest.raises(ValueError):
            self._sim(cycles_per_second=0)

    def test_capacity_margin_one_is_latency_target(self):
        """q = 1 exactly when the M/M/1 latency equals the target."""
        sim = self._sim()
        phase = sim.app.phases[0]
        for config in (VCoreConfig(1, 64), VCoreConfig(4, 512)):
            for rate in (250.0, 900.0):
                q = sim.qos_of(phase, config, rate)
                latency = sim.latency_cycles(phase, config, rate)
                if q >= 1.0:
                    assert latency <= sim.target_latency + 1e-6
                else:
                    assert latency > sim.target_latency - 1e-6

    def test_latency_capped(self):
        sim = self._sim()
        phase = sim.app.phases[0]
        latency = sim.latency_cycles(phase, VCoreConfig(1, 64), 1e9)
        assert latency == 10.0 * sim.target_latency

    def test_more_capacity_lowers_latency(self):
        sim = self._sim()
        phase = sim.app.phases[0]
        small = sim.latency_cycles(phase, VCoreConfig(1, 64), 800.0)
        large = sim.latency_cycles(phase, VCoreConfig(8, 1024), 800.0)
        assert large < small

    def test_oracle_run_has_no_violations(self):
        sim = self._sim()
        result = sim.run(OracleAllocator(qos_goal=1.0), intervals=200)
        assert result.violation_rate == 0.0

    def test_race_holds_worst_case_core_constantly(self):
        from repro.experiments.scenarios import latency_worst_case_config

        sim = self._sim()
        config = latency_worst_case_config(sim)
        race = RaceToIdleAllocator(
            config=config, qos_goal=1.0, can_idle=False
        )
        result = sim.run(race, intervals=100)
        assert result.violation_rate == 0.0
        rates = set(round(r.cost_rate, 8) for r in result.records)
        assert len(rates) == 1  # flat cost line, as in Fig. 9

    def test_request_rate_recorded(self):
        sim = self._sim()
        result = sim.run(OracleAllocator(qos_goal=1.0), intervals=50)
        assert all(r.request_rate > 0 for r in result.records)
