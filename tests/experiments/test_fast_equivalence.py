"""The fast engine is an optimization, never a model change.

Every cell here is run twice — fast paths on (vectorized kernel,
memoized tables, incremental envelopes) and off (the seed's scalar
reference paths) — and must produce *identical* results, record for
record.  Likewise the sweep executor: job count must be invisible in
the outputs.
"""

import pytest

from repro import perf
from repro.experiments.scenarios import (
    compare_allocators,
    run_app_with_allocator,
)
from repro.experiments.stats import (
    CellSpec,
    run_across_seeds,
    run_cells,
    seed_stability_report,
)

# One throughput app, one latency app, one phase-heavy app; all four
# allocator kinds are exercised across the cells.
CELLS = (
    ("x264", "cash"),
    ("x264", "optimal"),
    ("x264", "race"),
    ("x264", "convex"),
    ("apache", "cash"),
    ("mcf", "cash"),
)


@pytest.fixture(autouse=True)
def restore_fast_paths():
    yield
    perf.set_fast_paths(True)


class TestFastVsReference:
    @pytest.mark.parametrize("app_name,kind", CELLS)
    def test_cell_outputs_identical(self, app_name, kind):
        with perf.fast_paths(True):
            fast = run_app_with_allocator(app_name, kind, intervals=60, seed=0)
        with perf.fast_paths(False):
            reference = run_app_with_allocator(
                app_name, kind, intervals=60, seed=0
            )
        assert fast.mean_cost_rate == reference.mean_cost_rate
        assert fast.cost_dollars == reference.cost_dollars
        assert fast.violation_percent == reference.violation_percent
        assert fast.records == reference.records

    def test_nondefault_seed_identical(self):
        with perf.fast_paths(True):
            fast = run_app_with_allocator("x264", "cash", intervals=60, seed=3)
        with perf.fast_paths(False):
            reference = run_app_with_allocator(
                "x264", "cash", intervals=60, seed=3
            )
        assert fast.records == reference.records


class TestParallelVsSerial:
    SPECS = tuple(
        CellSpec(app_name=app, kind=kind, intervals=40, seed=seed)
        for app, kind in (("x264", "cash"), ("hmmer", "optimal"))
        for seed in (0, 1)
    )

    def test_run_cells_order_and_results(self):
        serial = run_cells(self.SPECS, jobs=1)
        parallel = run_cells(self.SPECS, jobs=2)
        assert len(serial) == len(self.SPECS)
        for left, right in zip(serial, parallel):
            assert left.app_name == right.app_name
            assert left.mean_cost_rate == right.mean_cost_rate
            assert left.violation_percent == right.violation_percent
            assert left.records == right.records

    def test_run_across_seeds_identical(self):
        serial = run_across_seeds(
            "x264", "cash", seeds=(0, 1), intervals=40, jobs=1
        )
        parallel = run_across_seeds(
            "x264", "cash", seeds=(0, 1), intervals=40, jobs=2
        )
        assert serial == parallel

    def test_seed_stability_report_identical(self):
        serial = seed_stability_report(
            ["x264"], seeds=(0, 1), intervals=40, jobs=1
        )
        parallel = seed_stability_report(
            ["x264"], seeds=(0, 1), intervals=40, jobs=2
        )
        assert serial == parallel

    def test_compare_allocators_identical(self):
        serial = compare_allocators(
            app_names=["x264"], intervals=40, jobs=1
        )
        parallel = compare_allocators(
            app_names=["x264"], intervals=40, jobs=2
        )
        assert serial.keys() == parallel.keys()
        for label in serial:
            for app_name in serial[label]:
                left = serial[label][app_name]
                right = parallel[label][app_name]
                assert left.mean_cost_rate == right.mean_cost_rate
                assert left.records == right.records

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_cells(self.SPECS, jobs=0)
