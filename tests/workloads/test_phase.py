"""Phase models and phased applications."""

import pytest
from hypothesis import given, strategies as st

from repro.workloads.phase import Phase, PhasedApplication


def make_phase(**overrides):
    defaults = dict(
        name="p",
        instructions_m=10,
        ilp=2.0,
        mem_refs_per_inst=0.3,
        l1_miss_rate=0.1,
        working_set=((128, 0.5), (1024, 0.9)),
    )
    defaults.update(overrides)
    return Phase(**defaults)


class TestPhaseValidation:
    def test_valid_phase(self):
        phase = make_phase()
        assert phase.instructions == 10e6

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            make_phase(instructions_m=0)

    def test_rejects_tiny_ilp(self):
        with pytest.raises(ValueError):
            make_phase(ilp=0.05)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            make_phase(mem_refs_per_inst=1.5)
        with pytest.raises(ValueError):
            make_phase(l1_miss_rate=-0.1)
        with pytest.raises(ValueError):
            make_phase(branch_fraction=2.0)
        with pytest.raises(ValueError):
            make_phase(mispredict_rate=-1.0)

    def test_rejects_mlp_below_one(self):
        with pytest.raises(ValueError):
            make_phase(mlp=0.5)

    def test_rejects_unsorted_working_set(self):
        with pytest.raises(ValueError):
            make_phase(working_set=((1024, 0.5), (128, 0.9)))

    def test_rejects_decreasing_fractions(self):
        with pytest.raises(ValueError):
            make_phase(working_set=((128, 0.9), (1024, 0.5)))

    def test_rejects_fraction_above_one(self):
        with pytest.raises(ValueError):
            make_phase(working_set=((128, 1.2),))


class TestL2HitFraction:
    def test_step_semantics(self):
        """Capture jumps only once a working set fully fits."""
        phase = make_phase(working_set=((128, 0.5), (1024, 0.9)))
        assert phase.l2_hit_fraction(64) == 0.0
        assert phase.l2_hit_fraction(128) == 0.5
        assert phase.l2_hit_fraction(512) == 0.5  # plateau
        assert phase.l2_hit_fraction(1024) == 0.9
        assert phase.l2_hit_fraction(8192) == 0.9

    def test_empty_working_set_captures_nothing(self):
        phase = make_phase(working_set=())
        assert phase.l2_hit_fraction(8192) == 0.0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            make_phase().l2_hit_fraction(0)

    @given(
        kb1=st.sampled_from([64 * 2 ** i for i in range(8)]),
        kb2=st.sampled_from([64 * 2 ** i for i in range(8)]),
    )
    def test_monotone_nondecreasing(self, kb1, kb2):
        phase = make_phase()
        if kb1 <= kb2:
            assert phase.l2_hit_fraction(kb1) <= phase.l2_hit_fraction(kb2)


class TestPhasedApplication:
    def _app(self):
        return PhasedApplication(
            name="app",
            phases=[
                make_phase(name="a", instructions_m=10),
                make_phase(name="b", instructions_m=20),
            ],
        )

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            PhasedApplication(name="x", phases=[])

    def test_rejects_unknown_qos_kind(self):
        with pytest.raises(ValueError):
            PhasedApplication(name="x", phases=[make_phase()], qos_kind="power")

    def test_latency_needs_request_size(self):
        with pytest.raises(ValueError):
            PhasedApplication(name="x", phases=[make_phase()], qos_kind="latency")

    def test_total_instructions(self):
        assert self._app().total_instructions == 30e6

    def test_phase_at_instruction(self):
        app = self._app()
        index, phase = app.phase_at_instruction(5e6)
        assert (index, phase.name) == (0, "a")
        index, phase = app.phase_at_instruction(15e6)
        assert (index, phase.name) == (1, "b")

    def test_phase_lookup_wraps(self):
        app = self._app()
        index, phase = app.phase_at_instruction(31e6)
        assert (index, phase.name) == (0, "a")

    def test_phase_lookup_rejects_negative(self):
        with pytest.raises(ValueError):
            self._app().phase_at_instruction(-1)

    def test_phase_schedule(self):
        schedule = self._app().phase_schedule()
        assert schedule[0][:2] == (0.0, 10e6)
        assert schedule[1][:2] == (10e6, 30e6)

    def test_sequence_protocol(self):
        app = self._app()
        assert len(app) == 2
        assert app[1].name == "b"
        assert [p.name for p in app] == ["a", "b"]

    @given(offset=st.floats(min_value=0, max_value=1e9, allow_nan=False))
    def test_lookup_always_lands_in_a_phase(self, offset):
        app = self._app()
        index, phase = app.phase_at_instruction(offset)
        assert phase in app.phases
        assert 0 <= index < len(app)
