"""The 13 application models and the x264 Fig. 1 properties."""

import pytest

from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import ALL_APPS, APP_NAMES, get_app, make_x264

EXPECTED_NAMES = [
    "apache",
    "astar",
    "bzip",
    "ferret",
    "gcc",
    "h264ref",
    "hmmer",
    "lib",
    "mailserver",
    "mcf",
    "omnetpp",
    "sjeng",
    "x264",
]


class TestSuiteComposition:
    def test_thirteen_applications(self):
        assert len(APP_NAMES) == 13

    def test_paper_benchmark_names(self):
        assert APP_NAMES == EXPECTED_NAMES

    def test_all_apps_builds_fresh_instances(self):
        apps = ALL_APPS()
        assert len(apps) == 13
        assert apps[0] is not ALL_APPS()[0]

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            get_app("doom")

    def test_server_apps_are_latency(self):
        assert get_app("apache").qos_kind == "latency"
        assert get_app("mailserver").qos_kind == "latency"

    def test_spec_apps_are_throughput(self):
        for name in ("astar", "gcc", "mcf", "x264"):
            assert get_app(name).qos_kind == "throughput"

    def test_every_app_has_valid_phases(self):
        for app in ALL_APPS():
            assert len(app) >= 2, f"{app.name} needs phases to adapt to"
            for phase in app:
                assert phase.instructions > 0

    def test_every_app_achieves_positive_qos(self):
        model = DEFAULT_PERF_MODEL
        for app in ALL_APPS():
            for phase in app:
                best, ipc = model.best_config(phase, DEFAULT_CONFIG_SPACE)
                assert ipc > 0.1, f"{phase.name} unreasonably slow"


class TestX264Figure1:
    """The motivational properties of Fig. 1 (Section II-A)."""

    def setup_method(self):
        self.app = make_x264()
        self.model = DEFAULT_PERF_MODEL
        self.space = DEFAULT_CONFIG_SPACE

    def test_ten_phases(self):
        assert len(self.app) == 10

    def test_six_of_ten_phases_have_distinct_local_optima(self):
        count = 0
        for phase in self.app:
            best, _ = self.model.best_config(phase, self.space)
            maxima = self.model.local_maxima(phase, self.space)
            if any(config != best for config in maxima):
                count += 1
        assert count == 6

    def test_no_two_consecutive_phases_share_an_optimum(self):
        optima = [
            self.model.best_config(phase, self.space)[0]
            for phase in self.app
        ]
        for previous, current in zip(optima, optima[1:]):
            assert previous != current

    def test_optimum_location_varies_widely(self):
        """The true optimum moves across the grid phase to phase."""
        optima = {
            self.model.best_config(phase, self.space)[0]
            for phase in self.app
        }
        assert len(optima) >= 7

    def test_phase3_needs_a_large_cache(self):
        """Fig. 8: phase 3's true optimum is expensive (a big L2)."""
        phase3 = self.app.phases[2]
        best, _ = self.model.best_config(phase3, self.space)
        assert best.l2_kb == 8192

    def test_streaming_phase_prefers_minimal_cache(self):
        """Phase 6 (deblocking) captures almost nothing: extra banks
        only add hit latency, so 64 KB wins."""
        phase6 = self.app.phases[5]
        best, _ = self.model.best_config(phase6, self.space)
        assert best.l2_kb == 64


class TestServerApps:
    def test_apache_request_size(self):
        app = get_app("apache")
        assert app.instructions_per_request > 0

    def test_server_phases_are_long(self):
        """Request-mix shifts are slow relative to control intervals."""
        for name in ("apache", "mailserver"):
            for phase in get_app(name):
                assert phase.instructions_m >= 100
