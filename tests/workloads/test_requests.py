"""Request streams for the server workloads (Fig. 9)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.workloads.requests import OscillatingLoad, RequestTrace


class TestOscillatingLoad:
    def test_defaults_match_fig9_scale(self):
        load = OscillatingLoad()
        rates = load.sample(0, load.period_cycles, 64)
        assert min(rates) >= load.floor
        assert max(rates) <= load.peak_rate

    def test_starts_at_trough(self):
        load = OscillatingLoad(mean_rate=800, amplitude=550, floor=100)
        assert load.rate_at(0) == pytest.approx(250.0)

    def test_peak_at_three_quarters(self):
        load = OscillatingLoad(mean_rate=800, amplitude=550, floor=100)
        rate = load.rate_at(load.period_cycles / 2)
        assert rate == pytest.approx(1350.0)

    def test_periodicity(self):
        load = OscillatingLoad()
        assert load.rate_at(1e6) == pytest.approx(
            load.rate_at(1e6 + load.period_cycles)
        )

    def test_floor_is_enforced(self):
        load = OscillatingLoad(mean_rate=100, amplitude=500, floor=50)
        rates = load.sample(0, load.period_cycles, 100)
        assert min(rates) == 50

    def test_burst_window(self):
        load = OscillatingLoad(
            burst_factor=2.0,
            burst_start_cycle=0.0,
            burst_end_cycle=1e6,
        )
        inside = load.rate_at(0.0)
        outside = OscillatingLoad().rate_at(0.0)
        assert inside == pytest.approx(2 * outside)

    def test_peak_rate_includes_burst(self):
        load = OscillatingLoad(mean_rate=800, amplitude=200, burst_factor=1.5)
        assert load.peak_rate == pytest.approx(1500.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OscillatingLoad(mean_rate=0)
        with pytest.raises(ValueError):
            OscillatingLoad(amplitude=-1)
        with pytest.raises(ValueError):
            OscillatingLoad(period_cycles=0)
        with pytest.raises(ValueError):
            OscillatingLoad(burst_factor=0.5)
        with pytest.raises(ValueError):
            OscillatingLoad().rate_at(-1.0)

    def test_sample_validation(self):
        load = OscillatingLoad()
        with pytest.raises(ValueError):
            load.sample(0, 100, 0)
        with pytest.raises(ValueError):
            load.sample(100, 100, 10)

    @given(cycle=st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_rate_always_within_bounds(self, cycle):
        load = OscillatingLoad()
        rate = load.rate_at(cycle)
        assert load.floor <= rate <= load.peak_rate


class TestRequestTrace:
    def test_rates_per_interval(self):
        trace = RequestTrace(rates=[100, 200, 300], interval_cycles=1000)
        assert trace.rate_at(0) == 100
        assert trace.rate_at(1500) == 200
        assert trace.rate_at(2999) == 300

    def test_wraps(self):
        trace = RequestTrace(rates=[100, 200], interval_cycles=10)
        assert trace.rate_at(25) == 100  # third interval wraps to first

    def test_peak_and_total(self):
        trace = RequestTrace(rates=[5, 50, 10], interval_cycles=100)
        assert trace.peak_rate == 50
        assert trace.total_cycles == 300

    def test_iteration(self):
        trace = RequestTrace(rates=[1, 2], interval_cycles=10)
        assert list(trace) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestTrace(rates=[], interval_cycles=10)
        with pytest.raises(ValueError):
            RequestTrace(rates=[-1], interval_cycles=10)
        with pytest.raises(ValueError):
            RequestTrace(rates=[1], interval_cycles=0)
        with pytest.raises(ValueError):
            RequestTrace(rates=[1], interval_cycles=10).rate_at(-5)
