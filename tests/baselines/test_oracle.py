"""The brute-force oracle (Section V-C)."""

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.baselines.oracle import (
    OracleAllocator,
    build_oracle_table,
    phase_points,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264


class TestPhasePoints:
    def test_one_point_per_config(self):
        phase = make_x264().phases[0]
        points = phase_points(phase, DEFAULT_PERF_MODEL)
        assert len(points) == len(DEFAULT_CONFIG_SPACE)

    def test_points_carry_true_ipc_and_cost(self):
        phase = make_x264().phases[0]
        for point in phase_points(phase, DEFAULT_PERF_MODEL):
            assert point.speedup == pytest.approx(
                DEFAULT_PERF_MODEL.ipc(phase, point.config)
            )
            assert point.cost_rate == pytest.approx(
                point.config.cost_rate(DEFAULT_COST_MODEL)
            )


class TestOracleTable:
    def test_entry_per_phase(self):
        app = make_x264()
        table = build_oracle_table(app, qos_goal=0.7, model=DEFAULT_PERF_MODEL)
        assert set(table) == {phase.name for phase in app.phases}

    def test_schedules_meet_goal(self):
        app = make_x264()
        goal = 0.7
        table = build_oracle_table(app, qos_goal=goal, model=DEFAULT_PERF_MODEL)
        for entry in table.values():
            assert entry.schedule.average_speedup == pytest.approx(goal)

    def test_cost_never_exceeds_cheapest_feasible_config(self):
        app = make_x264()
        goal = 0.7
        table = build_oracle_table(app, qos_goal=goal, model=DEFAULT_PERF_MODEL)
        for phase in app.phases:
            feasible = [
                config.cost_rate(DEFAULT_COST_MODEL)
                for config in DEFAULT_CONFIG_SPACE
                if DEFAULT_PERF_MODEL.ipc(phase, config) >= goal
            ]
            assert table[phase.name].cost_rate <= min(feasible) + 1e-12

    def test_rejects_bad_goal(self):
        with pytest.raises(ValueError):
            build_oracle_table(make_x264(), qos_goal=0, model=DEFAULT_PERF_MODEL)


class TestOracleAllocator:
    def test_decides_the_envelope_schedule(self):
        phase = make_x264().phases[0]
        points = phase_points(phase, DEFAULT_PERF_MODEL)
        allocator = OracleAllocator(qos_goal=0.7)
        schedule = allocator.decide(None, points)
        assert schedule.average_speedup == pytest.approx(0.7)

    def test_unreachable_goal_runs_fastest(self):
        phase = make_x264().phases[0]
        points = phase_points(phase, DEFAULT_PERF_MODEL)
        allocator = OracleAllocator(qos_goal=99.0)
        schedule = allocator.decide(None, points)
        assert schedule.saturated
        fastest = max(points, key=lambda p: p.speedup)
        assert schedule.entries[0].point is fastest

    def test_rejects_bad_goal(self):
        with pytest.raises(ValueError):
            OracleAllocator(qos_goal=-1)
