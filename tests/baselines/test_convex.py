"""The convex-optimization feedback baseline (Sections II-B, VI-C)."""

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import DEFAULT_CONFIG_SPACE, VCoreConfig
from repro.baselines.convex import ConvexOptimizationAllocator, average_points
from repro.baselines.oracle import phase_points
from repro.runtime.cash import QoSMeasurement
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264


class TestAveragePoints:
    def test_one_point_per_config(self):
        points = average_points(make_x264(), DEFAULT_PERF_MODEL)
        assert len(points) == len(DEFAULT_CONFIG_SPACE)

    def test_average_is_harmonic_mean_over_phases(self):
        """The average hides phase structure: it must sit strictly
        between the best and worst per-phase IPC."""
        app = make_x264()
        points = average_points(app, DEFAULT_PERF_MODEL)
        for point in points[:8]:
            per_phase = [
                DEFAULT_PERF_MODEL.ipc(phase, point.config)
                for phase in app.phases
            ]
            assert min(per_phase) < point.speedup < max(per_phase)

    def test_candidates_restrict_pool(self):
        points = average_points(
            make_x264(), DEFAULT_PERF_MODEL,
            candidates=[VCoreConfig(1, 64), VCoreConfig(8, 8192)],
        )
        assert len(points) == 2


class TestConvexAllocator:
    def _allocator(self, goal=0.7):
        return ConvexOptimizationAllocator(
            app=make_x264(), qos_goal=goal, model=DEFAULT_PERF_MODEL
        )

    def test_first_decision_targets_goal_on_average_model(self):
        allocator = self._allocator()
        schedule = allocator.decide(None, [])
        assert schedule.average_speedup == pytest.approx(0.7, rel=0.01)

    def test_feedback_raises_allocation_after_shortfall(self):
        allocator = self._allocator()
        before = allocator.decide(None, []).average_cost_rate
        # Deliver half the goal: the controller must demand more.
        schedule = allocator.decide(QoSMeasurement(overall_qos=0.35), [])
        assert schedule.average_speedup > 0.7
        assert schedule.average_cost_rate > before

    def test_feedback_lowers_allocation_after_overshoot(self):
        allocator = self._allocator()
        allocator.decide(None, [])
        schedule = allocator.decide(QoSMeasurement(overall_qos=2.0), [])
        assert schedule.average_speedup < 0.7

    def test_model_error_in_nonconvex_phase(self):
        """The average-case model misjudges individual phases — the
        core failure the paper demonstrates (Fig. 2)."""
        app = make_x264()
        allocator = self._allocator()
        schedule = allocator.decide(None, [])
        # Evaluate the schedule under the *true* surface of each phase.
        deliveries = []
        for phase in app.phases:
            q = sum(
                (0.0 if e.point.is_idle else
                 DEFAULT_PERF_MODEL.ipc(phase, e.point.config)) * e.fraction
                for e in schedule.entries
            )
            deliveries.append(q)
        assert min(deliveries) < 0.7 * 0.97  # violates in some phase

    def test_rejects_bad_goal(self):
        with pytest.raises(ValueError):
            ConvexOptimizationAllocator(
                app=make_x264(), qos_goal=0.0, model=DEFAULT_PERF_MODEL
            )


class TestHeterogeneous:
    def test_paper_core_types(self):
        from repro.baselines.heterogeneous import (
            BIG_CONFIG,
            LITTLE_CONFIG,
            coarse_grain_configs,
            coarse_grain_space,
        )

        # The selection principle: big = smallest configuration that
        # covers every app's QoS; little = most cost-efficient on
        # average (the paper's suite yielded 8S/4MB; ours needs 8 MB).
        assert BIG_CONFIG == VCoreConfig(8, 8192)
        assert LITTLE_CONFIG == VCoreConfig(1, 128)
        assert coarse_grain_configs() == [LITTLE_CONFIG, BIG_CONFIG]
        assert len(coarse_grain_space()) == 4  # the 2x2 grid

    def test_big_and_little_must_differ(self):
        from repro.baselines.heterogeneous import coarse_grain_space

        with pytest.raises(ValueError):
            coarse_grain_space(big=VCoreConfig(1, 128), little=VCoreConfig(1, 128))
