"""Race-to-idle (Sections II-B, VI-C)."""

import pytest

from repro.arch.cost import DEFAULT_COST_MODEL
from repro.arch.vcore import DEFAULT_CONFIG_SPACE, VCoreConfig
from repro.baselines.heterogeneous import BIG_CONFIG, LITTLE_CONFIG
from repro.baselines.oracle import phase_points
from repro.baselines.race import RaceToIdleAllocator, worst_case_config
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264


class TestWorstCaseConfig:
    def test_meets_goal_in_every_phase(self):
        app = make_x264()
        goal = 0.7
        config = worst_case_config(app, goal, DEFAULT_PERF_MODEL)
        for phase in app.phases:
            assert DEFAULT_PERF_MODEL.ipc(phase, config) >= goal

    def test_is_cheapest_feasible(self):
        app = make_x264()
        goal = 0.7
        config = worst_case_config(app, goal, DEFAULT_PERF_MODEL)
        for candidate in DEFAULT_CONFIG_SPACE:
            if all(
                DEFAULT_PERF_MODEL.ipc(phase, candidate) >= goal
                for phase in app.phases
            ):
                assert config.cost_rate(DEFAULT_COST_MODEL) <= (
                    candidate.cost_rate(DEFAULT_COST_MODEL) + 1e-12
                )

    def test_infeasible_goal_falls_back_to_best_worst_phase(self):
        app = make_x264()
        config = worst_case_config(app, 50.0, DEFAULT_PERF_MODEL)
        assert config in DEFAULT_CONFIG_SPACE

    def test_restricted_candidates(self):
        app = make_x264()
        config = worst_case_config(
            app, 0.7, DEFAULT_PERF_MODEL,
            candidates=[LITTLE_CONFIG, BIG_CONFIG],
        )
        assert config in (LITTLE_CONFIG, BIG_CONFIG)

    def test_rejects_bad_goal(self):
        with pytest.raises(ValueError):
            worst_case_config(make_x264(), 0.0, DEFAULT_PERF_MODEL)


class TestRaceToIdleAllocator:
    def _points(self, phase_index=0):
        return phase_points(make_x264().phases[phase_index], DEFAULT_PERF_MODEL)

    def test_races_then_idles(self):
        app = make_x264()
        goal = 0.7
        config = worst_case_config(app, goal, DEFAULT_PERF_MODEL)
        allocator = RaceToIdleAllocator(config=config, qos_goal=goal)
        schedule = allocator.decide(None, self._points())
        assert schedule.entries[0].point.config == config
        assert schedule.entries[-1].point.is_idle
        # Work delivered equals the goal exactly.
        assert schedule.average_speedup == pytest.approx(goal)

    def test_busy_fraction_is_goal_over_speed(self):
        app = make_x264()
        goal = 0.7
        config = worst_case_config(app, goal, DEFAULT_PERF_MODEL)
        allocator = RaceToIdleAllocator(config=config, qos_goal=goal)
        points = self._points()
        true_speed = next(p.speedup for p in points if p.config == config)
        schedule = allocator.decide(None, points)
        assert schedule.entries[0].fraction == pytest.approx(goal / true_speed)

    def test_cannot_idle_holds_config_full_time(self):
        """Servers can't race ahead of unarrived requests (Fig. 9)."""
        config = worst_case_config(make_x264(), 0.7, DEFAULT_PERF_MODEL)
        allocator = RaceToIdleAllocator(
            config=config, qos_goal=0.7, can_idle=False
        )
        schedule = allocator.decide(None, self._points())
        assert len(schedule.entries) == 1
        assert schedule.entries[0].fraction == 1.0

    def test_slow_phase_runs_full_interval(self):
        """If the config barely meets (or misses) the goal this phase,
        there is nothing to idle."""
        allocator = RaceToIdleAllocator(
            config=VCoreConfig(1, 64), qos_goal=10.0
        )
        schedule = allocator.decide(None, self._points())
        assert schedule.entries[0].fraction == 1.0

    def test_missing_config_rejected(self):
        allocator = RaceToIdleAllocator(
            config=VCoreConfig(8, 8192), qos_goal=0.5
        )
        points = [p for p in self._points() if p.config != VCoreConfig(8, 8192)]
        with pytest.raises(ValueError):
            allocator.decide(None, points)

    def test_rejects_bad_goal(self):
        with pytest.raises(ValueError):
            RaceToIdleAllocator(config=VCoreConfig(1, 64), qos_goal=0.0)
